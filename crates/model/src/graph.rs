//! Serializable network-graph format: a JSON DAG of typed layer nodes.
//!
//! Every experiment used to run on the hand-built zoo builders only; this
//! module breaks the simulator out of that closed world. A graph document
//! is a JSON object naming the input shape and a list of nodes — each a
//! string id, a typed op, and the ids of its operands — in any topological
//! or near-topological order. [`GraphDoc::lower`] validates the document
//! (typed [`GraphError`] for cycles, dangling edges, duplicate ids, shape
//! mismatches — never a panic) and produces the exact same [`Network`] IR
//! the builders emit, so liveness, simulation, fault injection, recovery
//! and the result cache all work on ingested graphs unchanged.
//! [`export`] is the inverse: any `Network` serializes back to a document,
//! and because the loader preserves document order whenever it is already
//! topological, a zoo net round-trips through export → load to an equal
//! `Network` (byte-identical simulation stats).
//!
//! Shortcut structure is not declared in the document — it is *detected*:
//! [`ShortcutReport::of`] classifies every cross-layer edge (consumer more
//! than one schedule step after its producer) by junction kind — residual
//! add, channel concat, or a plain layer consuming a stale map — with its
//! skip distance, which is how ingested U-Net-style long skips and
//! multi-branch DAGs light up the mining machinery automatically.
//!
//! # Wire format
//!
//! ```json
//! {
//!   "format": "sm-graph-v1",
//!   "name": "tiny",
//!   "input": {"n": 1, "c": 3, "h": 8, "w": 8},
//!   "nodes": [
//!     {"id": "c1", "op": {"conv": {"out_channels": 8, "kernel": 3,
//!                                  "stride": 1, "pad": 1, "relu": true}},
//!      "inputs": ["input"]},
//!     {"id": "add", "op": {"add": {"relu": true}}, "inputs": ["input", "c1"]}
//!   ]
//! }
//! ```
//!
//! Op kinds are the lowercase mnemonics the rest of the workspace prints
//! (`conv`, `dwconv`, `maxpool`, `avgpool`, `gap`, `fc`, `add`, `concat`),
//! mapped onto the Rust enum via the vendored derive's variant renames.
//! The reserved id `input` names the input pseudo-layer.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use serde::de::Value;
use serde::{Deserialize, Serialize};
use sm_tensor::Shape4;

use crate::{BuildError, ConvSpec, DwConvSpec, LayerKind, Network, NetworkBuilder, PoolSpec};

/// Format tag every document must carry (schema version gate).
pub const FORMAT: &str = "sm-graph-v1";

/// Reserved node id naming the input pseudo-layer.
pub const INPUT_ID: &str = "input";

/// The op kinds a document may use, in the wire spelling.
pub const OP_KINDS: &[&str] = &[
    "conv", "dwconv", "maxpool", "avgpool", "gap", "fc", "add", "concat",
];

/// Input feature-map shape as it appears on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphShape {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl From<Shape4> for GraphShape {
    fn from(s: Shape4) -> Self {
        GraphShape {
            n: s.n,
            c: s.c,
            h: s.h,
            w: s.w,
        }
    }
}

impl From<GraphShape> for Shape4 {
    fn from(s: GraphShape) -> Self {
        Shape4::new(s.n, s.c, s.h, s.w)
    }
}

/// A typed layer operation. Wire tags are the workspace's lowercase
/// mnemonics (variant renames); the container rename makes malformed-input
/// errors read "unknown variant `x` for op".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename = "op")]
pub enum GraphOp {
    /// Standard convolution.
    #[serde(rename = "conv")]
    Conv {
        /// Output channels.
        out_channels: usize,
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Fused ReLU.
        #[serde(default)]
        relu: bool,
    },
    /// Depthwise convolution (output channels equal input channels).
    #[serde(rename = "dwconv")]
    DepthwiseConv {
        /// Square kernel extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
        /// Fused ReLU.
        #[serde(default)]
        relu: bool,
    },
    /// Max pooling.
    #[serde(rename = "maxpool")]
    MaxPool {
        /// Square window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Average pooling.
    #[serde(rename = "avgpool")]
    AvgPool {
        /// Square window extent.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling to 1×1.
    #[serde(rename = "gap")]
    GlobalAvgPool,
    /// Fully-connected layer.
    #[serde(rename = "fc")]
    Fc {
        /// Output features.
        out_features: usize,
    },
    /// Element-wise addition (residual junction); exactly two inputs.
    #[serde(rename = "add")]
    EltwiseAdd {
        /// Fused ReLU.
        #[serde(default)]
        relu: bool,
    },
    /// Channel concatenation; two or more inputs.
    #[serde(rename = "concat")]
    Concat,
}

/// One node of the graph document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphNode {
    /// Unique node id; doubles as the lowered layer name.
    pub id: String,
    /// The operation.
    pub op: GraphOp,
    /// Operand node ids ([`INPUT_ID`] for the network input).
    pub inputs: Vec<String>,
}

/// A whole graph document: the JSON wire form of a [`Network`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphDoc {
    /// Schema version tag; must equal [`FORMAT`].
    pub format: String,
    /// Network name.
    pub name: String,
    /// Input feature-map shape.
    pub input: GraphShape,
    /// Layer nodes, ideally in schedule order.
    pub nodes: Vec<GraphNode>,
}

/// Typed error for graph ingestion. Loading never panics: every malformed
/// document maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The input is not well-formed JSON.
    Parse(String),
    /// The JSON is well-formed but does not match the document schema
    /// (missing field, wrong value type, …).
    Schema(String),
    /// The document's `format` tag is not a supported version.
    UnsupportedFormat(String),
    /// A node id appears twice, or shadows the reserved [`INPUT_ID`].
    DuplicateId(String),
    /// A node references an op kind the format does not define.
    UnknownOp {
        /// Offending node id (empty when the node has no readable id).
        node: String,
        /// The unrecognized kind string.
        op: String,
    },
    /// A node input references an id that is not in the document.
    DanglingEdge {
        /// Node whose input list is broken.
        node: String,
        /// The id that does not resolve.
        input: String,
    },
    /// The nodes cannot be topologically ordered.
    Cycle {
        /// A node on (or blocked by) the cycle — the first unschedulable
        /// node in document order.
        node: String,
    },
    /// A node has the wrong number of inputs for its op.
    Arity {
        /// Offending node id.
        node: String,
        /// What the op requires, e.g. `"exactly 2"`.
        expected: &'static str,
        /// How many inputs the document gave it.
        got: usize,
    },
    /// Operand shapes are incompatible, or a dimension is degenerate.
    Shape {
        /// Offending node id ([`INPUT_ID`] for a bad input shape).
        node: String,
        /// What went wrong.
        message: String,
    },
    /// The document has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Parse(m) => write!(f, "graph JSON does not parse: {m}"),
            GraphError::Schema(m) => write!(f, "graph document malformed: {m}"),
            GraphError::UnsupportedFormat(got) => {
                write!(f, "unsupported graph format {got:?}; expected {FORMAT:?}")
            }
            GraphError::DuplicateId(id) => write!(f, "duplicate node id {id:?}"),
            GraphError::UnknownOp { node, op } => {
                write!(f, "node {node:?}: unknown op kind {op:?}")
            }
            GraphError::DanglingEdge { node, input } => {
                write!(f, "node {node:?}: input {input:?} does not name a node")
            }
            GraphError::Cycle { node } => {
                write!(f, "graph has a cycle through or blocking node {node:?}")
            }
            GraphError::Arity {
                node,
                expected,
                got,
            } => write!(f, "node {node:?}: op takes {expected} inputs, got {got}"),
            GraphError::Shape { node, message } => write!(f, "node {node:?}: {message}"),
            GraphError::Empty => write!(f, "graph document has no nodes"),
        }
    }
}

impl Error for GraphError {}

impl GraphDoc {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`GraphError::Parse`] for malformed JSON, [`GraphError::UnknownOp`]
    /// for an unrecognized op kind, [`GraphError::Schema`] for any other
    /// mismatch with the document shape.
    pub fn from_json(input: &str) -> Result<GraphDoc, GraphError> {
        let value =
            serde::json::parse_document(input).map_err(|e| GraphError::Parse(e.to_string()))?;
        precheck_ops(&value)?;
        GraphDoc::deserialize(&value).map_err(|e| GraphError::Schema(e.to_string()))
    }

    /// Serializes the document to compact JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self).expect("derived Serialize is infallible")
    }

    /// Validates the document and lowers it into the builder IR.
    ///
    /// Document order is kept as the schedule whenever it is already
    /// topological (which [`export`] guarantees, making round-trips
    /// schedule-identical); otherwise nodes are scheduled by a
    /// deterministic earliest-ready topological sort.
    ///
    /// # Errors
    ///
    /// Any [`GraphError`] variant except `Parse`/`Schema`, which belong to
    /// [`GraphDoc::from_json`].
    pub fn lower(&self) -> Result<Network, GraphError> {
        if self.format != FORMAT {
            return Err(GraphError::UnsupportedFormat(self.format.clone()));
        }
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let shape: Shape4 = self.input.into();
        if shape.n == 0 || shape.c == 0 || shape.h == 0 || shape.w == 0 {
            return Err(GraphError::Shape {
                node: INPUT_ID.to_string(),
                message: format!("input shape {shape} has a zero dimension"),
            });
        }

        // Ids must be unique and must not shadow the input pseudo-layer.
        let mut ids: HashSet<&str> = HashSet::with_capacity(self.nodes.len() + 1);
        ids.insert(INPUT_ID);
        for n in &self.nodes {
            if !ids.insert(n.id.as_str()) {
                return Err(GraphError::DuplicateId(n.id.clone()));
            }
        }
        // Every edge must resolve before scheduling, so a dangling input
        // reports as such rather than as a bogus cycle.
        for n in &self.nodes {
            for input in &n.inputs {
                if !ids.contains(input.as_str()) {
                    return Err(GraphError::DanglingEdge {
                        node: n.id.clone(),
                        input: input.clone(),
                    });
                }
            }
            n.op.check_arity(&n.id, n.inputs.len())?;
        }

        let mut b = NetworkBuilder::new(self.name.clone(), shape);
        let mut placed: HashMap<&str, crate::LayerId> = HashMap::new();
        placed.insert(INPUT_ID, b.input_id());

        // Earliest-ready topological schedule, stable in document order:
        // a pass places every node whose operands are all placed; no
        // progress in a full pass means a cycle.
        let mut remaining: Vec<&GraphNode> = self.nodes.iter().collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            let mut next = Vec::with_capacity(remaining.len());
            for n in remaining {
                if n.inputs.iter().all(|i| placed.contains_key(i.as_str())) {
                    let ops: Vec<crate::LayerId> =
                        n.inputs.iter().map(|i| placed[i.as_str()]).collect();
                    let id = lower_node(&mut b, n, &ops)?;
                    placed.insert(n.id.as_str(), id);
                } else {
                    next.push(n);
                }
            }
            if next.len() == before {
                return Err(GraphError::Cycle {
                    node: next[0].id.clone(),
                });
            }
            remaining = next;
        }
        b.finish().map_err(|e| build_err(INPUT_ID, e))
    }
}

impl GraphOp {
    /// The wire tag of this op.
    pub fn kind(&self) -> &'static str {
        match self {
            GraphOp::Conv { .. } => "conv",
            GraphOp::DepthwiseConv { .. } => "dwconv",
            GraphOp::MaxPool { .. } => "maxpool",
            GraphOp::AvgPool { .. } => "avgpool",
            GraphOp::GlobalAvgPool => "gap",
            GraphOp::Fc { .. } => "fc",
            GraphOp::EltwiseAdd { .. } => "add",
            GraphOp::Concat => "concat",
        }
    }

    fn check_arity(&self, node: &str, got: usize) -> Result<(), GraphError> {
        let expected = match self {
            GraphOp::EltwiseAdd { .. } => ("exactly 2", got == 2),
            GraphOp::Concat => ("at least 2", got >= 2),
            _ => ("exactly 1", got == 1),
        };
        if expected.1 {
            Ok(())
        } else {
            Err(GraphError::Arity {
                node: node.to_string(),
                expected: expected.0,
                got,
            })
        }
    }
}

fn lower_node(
    b: &mut NetworkBuilder,
    n: &GraphNode,
    ops: &[crate::LayerId],
) -> Result<crate::LayerId, GraphError> {
    let name = n.id.clone();
    let r = match n.op {
        GraphOp::Conv {
            out_channels,
            kernel,
            stride,
            pad,
            relu,
        } => b.conv(
            name,
            ops[0],
            ConvSpec {
                out_channels,
                kernel,
                stride,
                pad,
                relu,
            },
        ),
        GraphOp::DepthwiseConv {
            kernel,
            stride,
            pad,
            relu,
        } => b.depthwise_conv(
            name,
            ops[0],
            DwConvSpec {
                kernel,
                stride,
                pad,
                relu,
            },
        ),
        GraphOp::MaxPool {
            kernel,
            stride,
            pad,
        } => b.pool(name, ops[0], PoolSpec::max(kernel, stride, pad)),
        GraphOp::AvgPool {
            kernel,
            stride,
            pad,
        } => b.pool(name, ops[0], PoolSpec::avg(kernel, stride, pad)),
        GraphOp::GlobalAvgPool => b.global_avg_pool(name, ops[0]),
        GraphOp::Fc { out_features } => b.fc(name, ops[0], out_features),
        GraphOp::EltwiseAdd { relu } => b.eltwise_add(name, ops[0], ops[1], relu),
        GraphOp::Concat => b.concat(name, ops),
    };
    r.map_err(|e| build_err(&n.id, e))
}

fn build_err(node: &str, e: BuildError) -> GraphError {
    match e {
        BuildError::Shape(message) => GraphError::Shape {
            node: node.to_string(),
            message,
        },
        // Duplicate ids and unknown layers are pre-checked against the
        // document, and `Empty` against the node list; reaching here means
        // the builder found something the prechecks missed — surface it
        // with the same typed shape rather than panicking.
        other => GraphError::Shape {
            node: node.to_string(),
            message: other.to_string(),
        },
    }
}

/// Rejects unrecognized op kinds with a typed error *before* the derived
/// deserializer runs, so "unknown layer kind" is distinguishable from a
/// generic schema mismatch. Structure that does not even reach the op
/// level is left for the derived deserializer to report.
fn precheck_ops(value: &Value) -> Result<(), GraphError> {
    let Value::Map(entries) = value else {
        return Ok(());
    };
    let Some((_, Value::Seq(nodes))) = entries.iter().find(|(k, _)| k == "nodes") else {
        return Ok(());
    };
    for node in nodes {
        let Value::Map(fields) = node else { continue };
        let id = fields
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap_or_default();
        let Some((_, op)) = fields.iter().find(|(k, _)| k == "op") else {
            continue;
        };
        let kind = match op {
            Value::Str(s) => Some(s.as_str()),
            Value::Map(m) if m.len() == 1 => Some(m[0].0.as_str()),
            _ => None,
        };
        if let Some(kind) = kind {
            if !OP_KINDS.contains(&kind) {
                return Err(GraphError::UnknownOp {
                    node: id,
                    op: kind.to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Parses and lowers a JSON graph document in one step.
///
/// # Errors
///
/// Any [`GraphError`]; see [`GraphDoc::from_json`] and [`GraphDoc::lower`].
///
/// # Example
///
/// ```
/// use sm_model::graph;
///
/// let net = graph::load(
///     r#"{"format":"sm-graph-v1","name":"t","input":{"n":1,"c":3,"h":8,"w":8},
///         "nodes":[{"id":"c1","op":{"conv":{"out_channels":4,"kernel":3,
///                                           "stride":1,"pad":1,"relu":true}},
///                   "inputs":["input"]}]}"#,
/// )
/// .unwrap();
/// assert_eq!(net.name(), "t");
/// assert_eq!(net.len(), 2);
/// ```
pub fn load(input: &str) -> Result<Network, GraphError> {
    GraphDoc::from_json(input)?.lower()
}

/// Exports any network — zoo-built or ingested — to a graph document.
///
/// Nodes are emitted in schedule order, which [`GraphDoc::lower`] keeps,
/// so `lower(export(net))` reproduces `net` exactly (same layer ids, same
/// schedule, hence byte-identical simulation stats).
pub fn export(net: &Network) -> GraphDoc {
    let nodes = net
        .layers()
        .iter()
        .skip(1) // the input pseudo-layer is implicit in the format
        .map(|l| GraphNode {
            id: l.name.clone(),
            op: op_of(&l.kind),
            inputs: l
                .inputs
                .iter()
                .map(|&i| net.layer(i).name.clone())
                .collect(),
        })
        .collect();
    GraphDoc {
        format: FORMAT.to_string(),
        name: net.name().to_string(),
        input: net.input().out_shape.into(),
        nodes,
    }
}

/// [`export`] straight to a JSON string.
pub fn export_json(net: &Network) -> String {
    export(net).to_json()
}

fn op_of(kind: &LayerKind) -> GraphOp {
    match *kind {
        // The input pseudo-layer never reaches here (skipped by `export`),
        // but lowering it as a 1×1 identity would also be wrong — keep the
        // exhaustive match so a new LayerKind fails to compile instead.
        LayerKind::Input => unreachable!("input pseudo-layer is implicit"),
        LayerKind::Conv(s) => GraphOp::Conv {
            out_channels: s.out_channels,
            kernel: s.kernel,
            stride: s.stride,
            pad: s.pad,
            relu: s.relu,
        },
        LayerKind::DepthwiseConv(s) => GraphOp::DepthwiseConv {
            kernel: s.kernel,
            stride: s.stride,
            pad: s.pad,
            relu: s.relu,
        },
        LayerKind::Pool(s) => match s.kind {
            crate::PoolKind::Max => GraphOp::MaxPool {
                kernel: s.kernel,
                stride: s.stride,
                pad: s.pad,
            },
            crate::PoolKind::Avg => GraphOp::AvgPool {
                kernel: s.kernel,
                stride: s.stride,
                pad: s.pad,
            },
        },
        LayerKind::GlobalAvgPool => GraphOp::GlobalAvgPool,
        LayerKind::Fc { out_features } => GraphOp::Fc { out_features },
        LayerKind::EltwiseAdd { relu } => GraphOp::EltwiseAdd { relu },
        LayerKind::ConcatChannels => GraphOp::Concat,
    }
}

/// How a detected shortcut edge is consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JunctionKind {
    /// Residual element-wise addition.
    #[serde(rename = "add")]
    Add,
    /// Channel concatenation (bypass / dense connectivity).
    #[serde(rename = "concat")]
    Concat,
    /// Any other consumer reaching back across the schedule (e.g. a conv
    /// reading a map produced several steps earlier).
    #[serde(rename = "passthrough")]
    Passthrough,
}

/// One detected shortcut edge: a feature map consumed more than one
/// schedule step after its producer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShortcutHit {
    /// Producing layer name.
    pub producer: String,
    /// Consuming junction layer name.
    pub consumer: String,
    /// Layers the map must survive between producer and consumer
    /// (`0` would be an adjacent edge, which is not a shortcut).
    pub skip: usize,
    /// Junction classification.
    pub junction: JunctionKind,
}

/// Auto-detected shortcut structure of a network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ShortcutReport {
    /// Detected shortcut edges in schedule order of the consumer.
    pub hits: Vec<ShortcutHit>,
}

impl ShortcutReport {
    /// Scans `net`'s edges and classifies every shortcut.
    ///
    /// # Example
    ///
    /// ```
    /// use sm_model::graph::{JunctionKind, ShortcutReport};
    /// use sm_model::zoo;
    ///
    /// let r = ShortcutReport::of(&zoo::toy_residual(1));
    /// assert_eq!(r.hits.len(), 1);
    /// assert_eq!(r.hits[0].junction, JunctionKind::Add);
    /// assert_eq!(r.hits[0].skip, 2);
    /// ```
    pub fn of(net: &Network) -> Self {
        let hits = net
            .shortcut_edges()
            .iter()
            .map(|e| {
                let junction = match net.layer(e.to).kind {
                    LayerKind::EltwiseAdd { .. } => JunctionKind::Add,
                    LayerKind::ConcatChannels => JunctionKind::Concat,
                    _ => JunctionKind::Passthrough,
                };
                ShortcutHit {
                    producer: net.layer(e.from).name.clone(),
                    consumer: net.layer(e.to).name.clone(),
                    skip: e.skip_distance(),
                    junction,
                }
            })
            .collect();
        ShortcutReport { hits }
    }

    /// Number of add-junction shortcuts.
    pub fn adds(&self) -> usize {
        self.count(JunctionKind::Add)
    }

    /// Number of concat-junction shortcuts.
    pub fn concats(&self) -> usize {
        self.count(JunctionKind::Concat)
    }

    /// Longest skip distance detected, 0 when the network has no shortcuts.
    pub fn max_skip(&self) -> usize {
        self.hits.iter().map(|h| h.skip).max().unwrap_or(0)
    }

    fn count(&self, k: JunctionKind) -> usize {
        self.hits.iter().filter(|h| h.junction == k).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn zoo_nets_round_trip_to_equal_networks() {
        for net in [
            zoo::toy_residual(2),
            zoo::resnet_tiny(2, 1),
            zoo::squeezenet_tiny(1),
            zoo::densenet_tiny(3, 1),
            zoo::mobilenet_tiny(2),
        ] {
            let json = export_json(&net);
            let back = load(&json).unwrap_or_else(|e| panic!("{}: {e}", net.name()));
            assert_eq!(back, net, "{} did not round-trip", net.name());
        }
    }

    #[test]
    fn loader_accepts_out_of_order_documents_deterministically() {
        let mut doc = export(&zoo::toy_residual(1));
        doc.nodes.reverse();
        let net = doc.lower().unwrap();
        // Same layers, re-sorted into a valid schedule.
        assert_eq!(net.len(), zoo::toy_residual(1).len());
        for l in net.layers() {
            for &i in &l.inputs {
                assert!(i < l.id, "{} scheduled before an operand", l.name);
            }
        }
    }

    #[test]
    fn malformed_documents_yield_typed_errors() {
        let base = export(&zoo::toy_residual(1));

        let mut cyc = base.clone();
        cyc.nodes[0].inputs = vec![cyc.nodes[2].id.clone()];
        assert!(matches!(cyc.lower(), Err(GraphError::Cycle { .. })));

        let mut dup = base.clone();
        dup.nodes[1].id = dup.nodes[0].id.clone();
        assert!(matches!(dup.lower(), Err(GraphError::DuplicateId(_))));

        let mut dangling = base.clone();
        dangling.nodes[0].inputs = vec!["nope".into()];
        assert_eq!(
            dangling.lower(),
            Err(GraphError::DanglingEdge {
                node: base.nodes[0].id.clone(),
                input: "nope".into(),
            })
        );

        let mut fmt = base.clone();
        fmt.format = "sm-graph-v0".into();
        assert_eq!(
            fmt.lower(),
            Err(GraphError::UnsupportedFormat("sm-graph-v0".into()))
        );

        let mut empty = base.clone();
        empty.nodes.clear();
        assert_eq!(empty.lower(), Err(GraphError::Empty));

        let mut shadow = base;
        shadow.nodes[0].id = INPUT_ID.into();
        assert_eq!(
            shadow.lower(),
            Err(GraphError::DuplicateId(INPUT_ID.into()))
        );
    }

    #[test]
    fn unknown_op_is_reported_by_kind() {
        let json = r#"{"format":"sm-graph-v1","name":"t",
                       "input":{"n":1,"c":3,"h":8,"w":8},
                       "nodes":[{"id":"x","op":{"softmax":{}},"inputs":["input"]}]}"#;
        assert_eq!(
            GraphDoc::from_json(json),
            Err(GraphError::UnknownOp {
                node: "x".into(),
                op: "softmax".into(),
            })
        );
    }

    #[test]
    fn parse_and_schema_errors_are_distinct() {
        assert!(matches!(
            GraphDoc::from_json("{"),
            Err(GraphError::Parse(_))
        ));
        assert!(matches!(
            GraphDoc::from_json(r#"{"format":"sm-graph-v1"}"#),
            Err(GraphError::Schema(_))
        ));
    }

    #[test]
    fn detection_classifies_junctions() {
        let r = ShortcutReport::of(&zoo::squeezenet_tiny(1));
        assert!(r.concats() > 0);
        let r = ShortcutReport::of(&zoo::toy_residual(1));
        assert_eq!((r.adds(), r.concats(), r.max_skip()), (1, 0, 2));
    }
}
