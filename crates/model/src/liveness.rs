//! Feature-map lifetime analysis.
//!
//! A feature map is *live* from the step that produces it through the step
//! that last consumes it. The Shortcut Mining controller uses lifetimes to
//! decide which banks to pin (shortcut sources live across intermediate
//! layers) and the capacity sweeps use the peak live set as a lower bound on
//! the buffering an all-on-chip schedule would need.

use serde::Serialize;

use crate::{LayerId, Network};

/// Lifetime of one layer's output feature map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Lifetime {
    /// Producing layer.
    pub producer: LayerId,
    /// Schedule position of the last consumer; equals `producer` when the
    /// output is never consumed (network output).
    pub last_use: LayerId,
    /// Feature-map size in elements.
    pub elems: usize,
}

impl Lifetime {
    /// Whether the feature map is live while layer `at` executes, i.e. it
    /// was produced strictly before `at` and is consumed at or after `at`.
    pub fn live_at(&self, at: LayerId) -> bool {
        self.producer < at && at <= self.last_use
    }

    /// Number of layers the feature map must survive after its producer
    /// finishes (0 when consumed by the next layer).
    pub fn span(&self) -> usize {
        self.last_use
            .index()
            .saturating_sub(self.producer.index() + 1)
    }
}

/// Liveness analysis result over a whole network.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Liveness {
    lifetimes: Vec<Lifetime>,
}

impl Liveness {
    /// Computes lifetimes for every layer output of `net`.
    ///
    /// # Example
    ///
    /// ```
    /// use sm_model::liveness::Liveness;
    /// use sm_model::zoo;
    ///
    /// let net = zoo::toy_residual(1);
    /// let lv = Liveness::of(&net);
    /// let c1 = net.layer_by_name("c1").unwrap().id;
    /// // The shortcut source survives across the residual branch.
    /// assert_eq!(lv.lifetime(c1).span(), 2);
    /// ```
    pub fn of(net: &Network) -> Self {
        let lifetimes = net
            .layers()
            .iter()
            .map(|l| Lifetime {
                producer: l.id,
                last_use: net.last_use(l.id).unwrap_or(l.id),
                elems: l.out_elems(),
            })
            .collect();
        Liveness { lifetimes }
    }

    /// Lifetime of `id`'s output.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a layer of the analyzed network.
    pub fn lifetime(&self, id: LayerId) -> Lifetime {
        self.lifetimes[id.index()]
    }

    /// All lifetimes in schedule order.
    pub fn lifetimes(&self) -> &[Lifetime] {
        &self.lifetimes
    }

    /// Total elements live while layer `at` executes (its inputs and every
    /// other feature map still awaiting a later consumer; excludes the
    /// output being produced).
    pub fn live_elems_at(&self, at: LayerId) -> usize {
        self.lifetimes
            .iter()
            .filter(|lt| lt.live_at(at))
            .map(|lt| lt.elems)
            .sum()
    }

    /// Peak of [`Liveness::live_elems_at`] over the schedule, with the layer
    /// where the peak occurs.
    pub fn peak_live_elems(&self) -> (usize, LayerId) {
        let mut best = (0, LayerId(0));
        for lt in &self.lifetimes {
            let at = lt.producer;
            let live = self.live_elems_at(at);
            if live > best.0 {
                best = (live, at);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvSpec, NetworkBuilder};
    use sm_tensor::Shape4;

    fn toy() -> Network {
        let mut b = NetworkBuilder::new("toy", Shape4::new(1, 2, 4, 4));
        let x = b.input_id();
        let c1 = b.conv("c1", x, ConvSpec::relu(2, 3, 1, 1)).unwrap();
        let c2 = b.conv("c2", c1, ConvSpec::relu(2, 3, 1, 1)).unwrap();
        let c3 = b.conv("c3", c2, ConvSpec::linear(2, 3, 1, 1)).unwrap();
        let _a = b.eltwise_add("add", c1, c3, true).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn shortcut_source_lives_across_intermediates() {
        let net = toy();
        let lv = Liveness::of(&net);
        let c1 = net.layer_by_name("c1").unwrap().id;
        let lt = lv.lifetime(c1);
        assert_eq!(net.layer(lt.last_use).name, "add");
        assert_eq!(lt.span(), 2);
        // c1 is live at c2, c3 and add but not at c1 itself.
        let c2 = net.layer_by_name("c2").unwrap().id;
        let add = net.layer_by_name("add").unwrap().id;
        assert!(lt.live_at(c2));
        assert!(lt.live_at(add));
        assert!(!lt.live_at(c1));
    }

    #[test]
    fn mainline_feature_maps_have_zero_span() {
        let net = toy();
        let lv = Liveness::of(&net);
        let c2 = net.layer_by_name("c2").unwrap().id;
        assert_eq!(lv.lifetime(c2).span(), 0);
        // Network output is never consumed.
        let add = net.layer_by_name("add").unwrap().id;
        assert_eq!(lv.lifetime(add).last_use, add);
        assert_eq!(lv.lifetime(add).span(), 0);
    }

    #[test]
    fn live_set_counts_pinned_shortcut() {
        let net = toy();
        let lv = Liveness::of(&net);
        let c3 = net.layer_by_name("c3").unwrap().id;
        // While c3 executes: c1 (shortcut, 32 elems) and c2 (c3's input, 32).
        assert_eq!(lv.live_elems_at(c3), 64);
        let (peak, _) = lv.peak_live_elems();
        assert!(peak >= 64);
    }
}
