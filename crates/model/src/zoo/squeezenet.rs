//! SqueezeNet builders (Iandola et al., 2016), including the bypass variants
//! the Shortcut Mining paper evaluates.
//!
//! A *fire module* squeezes with a 1×1 convolution, then expands with
//! parallel 1×1 and 3×3 convolutions whose outputs are concatenated. The
//! *simple bypass* variant adds residual connections around fire modules
//! whose input and output channel counts match (fire 3, 5, 7, 9); the
//! *complex bypass* variant additionally inserts 1×1 projection shortcuts
//! around the remaining fire modules.

use sm_tensor::Shape4;

use crate::{ConvSpec, LayerId, ModelError, Network, NetworkBuilder, PoolSpec};

/// Squeeze / expand channel plan of one fire module.
#[derive(Debug, Clone, Copy)]
struct Fire {
    squeeze: usize,
    expand: usize,
}

impl Fire {
    const fn out_channels(&self) -> usize {
        2 * self.expand
    }
}

/// v1.0 fire plan (fire2..fire9).
const FIRES_V10: [Fire; 8] = [
    Fire {
        squeeze: 16,
        expand: 64,
    },
    Fire {
        squeeze: 16,
        expand: 64,
    },
    Fire {
        squeeze: 32,
        expand: 128,
    },
    Fire {
        squeeze: 32,
        expand: 128,
    },
    Fire {
        squeeze: 48,
        expand: 192,
    },
    Fire {
        squeeze: 48,
        expand: 192,
    },
    Fire {
        squeeze: 64,
        expand: 256,
    },
    Fire {
        squeeze: 64,
        expand: 256,
    },
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bypass {
    None,
    /// Residual adds around fire modules with matching channel counts.
    Simple,
    /// Simple bypasses plus 1×1 projection bypasses around the rest.
    Complex,
}

fn fire_module(
    b: &mut NetworkBuilder,
    tag: &str,
    input: LayerId,
    fire: Fire,
) -> Result<LayerId, ModelError> {
    let s = b.conv(
        format!("{tag}/squeeze1x1"),
        input,
        ConvSpec::relu(fire.squeeze, 1, 1, 0),
    )?;
    let e1 = b.conv(
        format!("{tag}/expand1x1"),
        s,
        ConvSpec::relu(fire.expand, 1, 1, 0),
    )?;
    let e3 = b.conv(
        format!("{tag}/expand3x3"),
        s,
        ConvSpec::relu(fire.expand, 3, 1, 1),
    )?;
    Ok(b.concat(format!("{tag}/concat"), &[e1, e3])?)
}

/// Applies one fire module plus its (optional) bypass junction.
fn fire_with_bypass(
    b: &mut NetworkBuilder,
    idx: usize,
    input: LayerId,
    fire: Fire,
    bypass: Bypass,
) -> Result<LayerId, ModelError> {
    let tag = format!("fire{idx}");
    let out = fire_module(b, &tag, input, fire)?;
    let in_c = b.shape_of(input)?.c;
    let matching = in_c == fire.out_channels();
    Ok(match (bypass, matching) {
        (Bypass::None, _) | (Bypass::Simple, false) => out,
        (Bypass::Simple, true) | (Bypass::Complex, true) => {
            b.eltwise_add(format!("{tag}/bypass"), input, out, false)?
        }
        (Bypass::Complex, false) => {
            let proj = b.conv(
                format!("{tag}/bypass_conv"),
                input,
                ConvSpec::linear(fire.out_channels(), 1, 1, 0),
            )?;
            b.eltwise_add(format!("{tag}/bypass"), proj, out, false)?
        }
    })
}

fn try_build_v10(name: &'static str, bypass: Bypass, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    let mut b = NetworkBuilder::new(name, Shape4::new(batch, 3, 227, 227));
    let x = b.input_id();
    let conv1 = b.conv("conv1", x, ConvSpec::relu(96, 7, 2, 0))?;
    let mut cur = b.pool("pool1", conv1, PoolSpec::max(3, 2, 0))?;
    for (i, fire) in FIRES_V10.iter().enumerate() {
        let idx = i + 2;
        cur = fire_with_bypass(&mut b, idx, cur, *fire, bypass)?;
        // v1.0 pools after fire4 and fire8.
        if idx == 4 || idx == 8 {
            cur = b.pool(format!("pool{idx}"), cur, PoolSpec::max(3, 2, 0))?;
        }
    }
    let conv10 = b.conv("conv10", cur, ConvSpec::relu(1000, 1, 1, 0))?;
    b.global_avg_pool("gap", conv10)?;
    Ok(b.finish()?)
}

/// SqueezeNet v1.0 without bypass connections.
pub fn squeezenet_v10(batch: usize) -> Network {
    try_squeezenet_v10(batch).expect("valid squeezenet request")
}

/// Fallible [`squeezenet_v10`]: rejects batch 0 with a typed
/// [`ModelError`] and propagates any builder error instead of panicking.
pub fn try_squeezenet_v10(batch: usize) -> Result<Network, ModelError> {
    try_build_v10("squeezenet_v10", Bypass::None, batch)
}

/// SqueezeNet v1.0 with simple bypass (residual adds around fire 3/5/7/9) —
/// the SqueezeNet variant of the paper's headline evaluation (53.3%
/// feature-map traffic reduction).
pub fn squeezenet_v10_simple_bypass(batch: usize) -> Network {
    try_squeezenet_v10_simple_bypass(batch).expect("valid squeezenet request")
}

/// Fallible [`squeezenet_v10_simple_bypass`].
pub fn try_squeezenet_v10_simple_bypass(batch: usize) -> Result<Network, ModelError> {
    try_build_v10("squeezenet_v10_simple_bypass", Bypass::Simple, batch)
}

/// SqueezeNet v1.0 with complex bypass (projection shortcuts on the
/// channel-changing fire modules as well).
pub fn squeezenet_v10_complex_bypass(batch: usize) -> Network {
    try_squeezenet_v10_complex_bypass(batch).expect("valid squeezenet request")
}

/// Fallible [`squeezenet_v10_complex_bypass`].
pub fn try_squeezenet_v10_complex_bypass(batch: usize) -> Result<Network, ModelError> {
    try_build_v10("squeezenet_v10_complex_bypass", Bypass::Complex, batch)
}

/// SqueezeNet v1.1 (3×3 stem, earlier pooling; ~2.4× cheaper than v1.0).
pub fn squeezenet_v11(batch: usize) -> Network {
    try_squeezenet_v11(batch).expect("valid squeezenet v1.1 request")
}

/// Fallible [`squeezenet_v11`]: rejects batch 0 with a typed
/// [`ModelError`] and propagates any builder error instead of panicking.
pub fn try_squeezenet_v11(batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    let mut b = NetworkBuilder::new("squeezenet_v11", Shape4::new(batch, 3, 227, 227));
    let x = b.input_id();
    let conv1 = b.conv("conv1", x, ConvSpec::relu(64, 3, 2, 0))?;
    let mut cur = b.pool("pool1", conv1, PoolSpec::max(3, 2, 0))?;
    for (i, fire) in FIRES_V10.iter().enumerate() {
        let idx = i + 2;
        cur = fire_with_bypass(&mut b, idx, cur, *fire, Bypass::None)?;
        // v1.1 pools after fire3 and fire5.
        if idx == 3 || idx == 5 {
            cur = b.pool(format!("pool{idx}"), cur, PoolSpec::max(3, 2, 0))?;
        }
    }
    let conv10 = b.conv("conv10", cur, ConvSpec::relu(1000, 1, 1, 0))?;
    b.global_avg_pool("gap", conv10)?;
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    #[test]
    fn v10_spatial_plan_matches_published_model() {
        let net = squeezenet_v10(1);
        let conv1 = net.layer_by_name("conv1").unwrap();
        assert_eq!(conv1.out_shape, Shape4::new(1, 96, 111, 111));
        let f2 = net.layer_by_name("fire2/concat").unwrap();
        assert_eq!(f2.out_shape, Shape4::new(1, 128, 55, 55));
        let f9 = net.layer_by_name("fire9/concat").unwrap();
        assert_eq!(f9.out_shape, Shape4::new(1, 512, 13, 13));
        let gap = net.layer_by_name("gap").unwrap();
        assert_eq!(gap.out_shape, Shape4::new(1, 1000, 1, 1));
    }

    #[test]
    fn simple_bypass_adds_around_matching_fires_only() {
        let net = squeezenet_v10_simple_bypass(1);
        for idx in [3, 5, 7, 9] {
            assert!(net.layer_by_name(&format!("fire{idx}/bypass")).is_some());
        }
        for idx in [2, 4, 6, 8] {
            assert!(net.layer_by_name(&format!("fire{idx}/bypass")).is_none());
        }
        let adds = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::EltwiseAdd { .. }))
            .count();
        assert_eq!(adds, 4);
    }

    #[test]
    fn complex_bypass_projects_the_rest() {
        let net = squeezenet_v10_complex_bypass(1);
        let adds = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::EltwiseAdd { .. }))
            .count();
        assert_eq!(adds, 8);
        for idx in [2, 4, 6, 8] {
            assert!(net
                .layer_by_name(&format!("fire{idx}/bypass_conv"))
                .is_some());
        }
        for idx in [3, 5, 7, 9] {
            assert!(net
                .layer_by_name(&format!("fire{idx}/bypass_conv"))
                .is_none());
        }
    }

    #[test]
    fn fire_fork_join_produces_shortcut_edges_even_without_bypass() {
        // The squeeze output feeds expand3x3 across expand1x1, and expand1x1
        // feeds the concat across expand3x3: both must survive on chip.
        let net = squeezenet_v10(1);
        assert!(net.shortcut_edges().len() >= 16);
    }

    #[test]
    fn fallible_builders_reject_batch_zero() {
        assert_eq!(try_squeezenet_v10(0), Err(ModelError::InvalidBatch));
        assert_eq!(
            try_squeezenet_v10_simple_bypass(0),
            Err(ModelError::InvalidBatch)
        );
        assert_eq!(
            try_squeezenet_v10_complex_bypass(0),
            Err(ModelError::InvalidBatch)
        );
        assert_eq!(try_squeezenet_v11(0), Err(ModelError::InvalidBatch));
        assert_eq!(
            try_squeezenet_v10_simple_bypass(2).unwrap().name(),
            "squeezenet_v10_simple_bypass"
        );
    }

    #[test]
    fn v11_is_cheaper_than_v10() {
        let v10 = squeezenet_v10(1);
        let v11 = squeezenet_v11(1);
        assert!(v11.total_macs() * 2 < v10.total_macs());
        let f9 = v11.layer_by_name("fire9/concat").unwrap();
        assert_eq!(f9.out_shape, Shape4::new(1, 512, 13, 13));
    }

    #[test]
    fn bypass_preserves_shapes() {
        let plain = squeezenet_v10(1);
        let simple = squeezenet_v10_simple_bypass(1);
        for idx in 2..=9 {
            let name = format!("fire{idx}/concat");
            assert_eq!(
                plain.layer_by_name(&name).unwrap().out_shape,
                simple.layer_by_name(&name).unwrap().out_shape
            );
        }
    }
}
