//! ResNet family builders (He et al., CVPR 2016) and plain (no-shortcut)
//! controls.

use sm_tensor::Shape4;

use crate::{ConvSpec, LayerId, ModelError, Network, NetworkBuilder, PoolSpec};

/// Block flavour of a ResNet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Two 3×3 convolutions (ResNet-18/34).
    Basic,
    /// 1×1 reduce, 3×3, 1×1 expand ×4 (ResNet-50/101/152).
    Bottleneck,
}

struct ResNetSpec {
    name: &'static str,
    block: Block,
    /// Blocks per stage (conv2_x .. conv5_x).
    stages: [usize; 4],
    /// Residual connections present (false builds the "plain" control).
    shortcuts: bool,
}

/// Base channel width of each stage's 3×3 convs.
const STAGE_WIDTH: [usize; 4] = [64, 128, 256, 512];

fn build(spec: &ResNetSpec, batch: usize) -> Network {
    let mut b = NetworkBuilder::new(spec.name, Shape4::new(batch, 3, 224, 224));
    let x = b.input_id();
    let stem = b
        .conv("conv1", x, ConvSpec::relu(64, 7, 2, 3))
        .expect("stem conv");
    let mut cur = b
        .pool("pool1", stem, PoolSpec::max(3, 2, 1))
        .expect("stem pool");

    for (stage, &blocks) in spec.stages.iter().enumerate() {
        let width = STAGE_WIDTH[stage];
        for block in 0..blocks {
            // conv2_x keeps 56x56 (the stem pool already downsampled);
            // later stages halve the resolution in their first block.
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let tag = format!("conv{}_{}", stage + 2, block + 1);
            cur = match spec.block {
                Block::Basic => basic_block(&mut b, &tag, cur, width, stride, spec.shortcuts),
                Block::Bottleneck => {
                    bottleneck_block(&mut b, &tag, cur, width, stride, spec.shortcuts)
                }
            };
        }
    }

    let gap = b.global_avg_pool("gap", cur).expect("gap");
    b.fc("fc1000", gap, 1000).expect("fc");
    b.finish().expect("resnet builds")
}

/// Whether the block needs a projection on the shortcut path: the spatial
/// resolution or channel count changes across the block.
fn needs_projection(
    b: &NetworkBuilder,
    input: LayerId,
    out_channels: usize,
    stride: usize,
) -> bool {
    let s = b.shape_of(input).expect("known layer");
    stride != 1 || s.c != out_channels
}

fn basic_block(
    b: &mut NetworkBuilder,
    tag: &str,
    input: LayerId,
    width: usize,
    stride: usize,
    shortcuts: bool,
) -> LayerId {
    let c1 = b
        .conv(
            format!("{tag}/a"),
            input,
            ConvSpec::relu(width, 3, stride, 1),
        )
        .expect("block conv a");
    if !shortcuts {
        return b
            .conv(format!("{tag}/b"), c1, ConvSpec::relu(width, 3, 1, 1))
            .expect("block conv b");
    }
    let c2 = b
        .conv(format!("{tag}/b"), c1, ConvSpec::linear(width, 3, 1, 1))
        .expect("block conv b");
    // The projection (when present) is scheduled just before the junction so
    // the shortcut data it reads must survive the whole residual branch.
    let shortcut = if needs_projection(b, input, width, stride) {
        b.conv(
            format!("{tag}/proj"),
            input,
            ConvSpec::linear(width, 1, stride, 0),
        )
        .expect("projection")
    } else {
        input
    };
    b.eltwise_add(format!("{tag}/add"), shortcut, c2, true)
        .expect("residual add")
}

fn bottleneck_block(
    b: &mut NetworkBuilder,
    tag: &str,
    input: LayerId,
    width: usize,
    stride: usize,
    shortcuts: bool,
) -> LayerId {
    let expanded = width * 4;
    let c1 = b
        .conv(format!("{tag}/a"), input, ConvSpec::relu(width, 1, 1, 0))
        .expect("bottleneck 1x1 reduce");
    // Stride lives on the 3x3, following the torchvision/v1.5 convention.
    let c2 = b
        .conv(format!("{tag}/b"), c1, ConvSpec::relu(width, 3, stride, 1))
        .expect("bottleneck 3x3");
    if !shortcuts {
        return b
            .conv(format!("{tag}/c"), c2, ConvSpec::relu(expanded, 1, 1, 0))
            .expect("bottleneck 1x1 expand");
    }
    let c3 = b
        .conv(format!("{tag}/c"), c2, ConvSpec::linear(expanded, 1, 1, 0))
        .expect("bottleneck 1x1 expand");
    let shortcut = if needs_projection(b, input, expanded, stride) {
        b.conv(
            format!("{tag}/proj"),
            input,
            ConvSpec::linear(expanded, 1, stride, 0),
        )
        .expect("projection")
    } else {
        input
    };
    b.eltwise_add(format!("{tag}/add"), shortcut, c3, true)
        .expect("residual add")
}

/// ResNet-18 (basic blocks, `[2, 2, 2, 2]`).
pub fn resnet18(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "resnet18",
            block: Block::Basic,
            stages: [2, 2, 2, 2],
            shortcuts: true,
        },
        batch,
    )
}

/// ResNet-34 (basic blocks, `[3, 4, 6, 3]`) — one of the paper's headline
/// networks (58% feature-map traffic reduction).
pub fn resnet34(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "resnet34",
            block: Block::Basic,
            stages: [3, 4, 6, 3],
            shortcuts: true,
        },
        batch,
    )
}

/// ResNet-50 (bottleneck blocks, `[3, 4, 6, 3]`).
pub fn resnet50(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "resnet50",
            block: Block::Bottleneck,
            stages: [3, 4, 6, 3],
            shortcuts: true,
        },
        batch,
    )
}

/// ResNet-101 (bottleneck blocks, `[3, 4, 23, 3]`).
pub fn resnet101(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "resnet101",
            block: Block::Bottleneck,
            stages: [3, 4, 23, 3],
            shortcuts: true,
        },
        batch,
    )
}

/// ResNet-152 (bottleneck blocks, `[3, 8, 36, 3]`) — one of the paper's
/// headline networks (43% feature-map traffic reduction).
pub fn resnet152(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "resnet152",
            block: Block::Bottleneck,
            stages: [3, 8, 36, 3],
            shortcuts: true,
        },
        batch,
    )
}

/// ResNet by depth: accepts 18, 34, 50, 101 or 152.
///
/// # Panics
///
/// Panics on any other depth or on batch 0; [`try_resnet`] is the
/// non-panicking form.
pub fn resnet(depth: usize, batch: usize) -> Network {
    try_resnet(depth, batch).unwrap_or_else(|e| panic!("{e}"))
}

/// [`resnet`] with malformed input reported as a typed error instead of a
/// panic.
///
/// # Errors
///
/// [`ModelError::UnknownDepth`] for depths outside the family,
/// [`ModelError::InvalidBatch`] for batch 0.
pub fn try_resnet(depth: usize, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    Ok(match depth {
        18 => resnet18(batch),
        34 => resnet34(batch),
        50 => resnet50(batch),
        101 => resnet101(batch),
        152 => resnet152(batch),
        other => return Err(ModelError::UnknownDepth(other)),
    })
}

/// Plain-18: ResNet-18 topology with the shortcuts removed (control network
/// with zero shortcut data).
pub fn plain18(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "plain18",
            block: Block::Basic,
            stages: [2, 2, 2, 2],
            shortcuts: false,
        },
        batch,
    )
}

/// Plain-34: ResNet-34 topology with the shortcuts removed.
pub fn plain34(batch: usize) -> Network {
    build(
        &ResNetSpec {
            name: "plain34",
            block: Block::Basic,
            stages: [3, 4, 6, 3],
            shortcuts: false,
        },
        batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;
    use crate::LayerKind;

    #[test]
    fn resnet34_has_the_published_conv_count() {
        let net = resnet34(1);
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Conv(_)))
            .count();
        // 33 "counted" convs (stem + 16 blocks * 2) + 3 projection convs.
        assert_eq!(convs, 36);
        let adds = net.layers().iter().filter(|l| l.kind.is_junction()).count();
        assert_eq!(adds, 16);
    }

    #[test]
    fn resnet50_macs_match_published_flops() {
        let net = resnet50(1);
        // ~4.1 GMACs for ResNet-50 at 224x224 (published ~4.1e9 fused ops).
        let g = net.total_macs() as f64 / 1e9;
        assert!((3.8..4.5).contains(&g), "got {g} GMACs");
    }

    #[test]
    fn resnet152_block_counts() {
        let net = resnet152(1);
        let adds = net.layers().iter().filter(|l| l.kind.is_junction()).count();
        assert_eq!(adds, 3 + 8 + 36 + 3);
        // Final stage output is 7x7x2048.
        let gap = net.layer_by_name("gap").unwrap();
        assert_eq!(net.in_shapes(gap.id)[0], Shape4::new(1, 2048, 7, 7));
    }

    #[test]
    fn shortcut_share_is_near_forty_percent() {
        // The paper's motivation: shortcut data ~40% of FM data.
        let share34 = NetworkStats::of(&resnet34(1)).shortcut_share();
        let share152 = NetworkStats::of(&resnet152(1)).shortcut_share();
        assert!((0.25..0.45).contains(&share34), "resnet34 {share34}");
        assert!((0.30..0.50).contains(&share152), "resnet152 {share152}");
    }

    #[test]
    fn plain_controls_have_no_shortcuts() {
        assert_eq!(plain18(1).shortcut_edges().len(), 0);
        assert_eq!(plain34(1).shortcut_edges().len(), 0);
        // Same conv trunk MACs as the residual versions minus projections.
        assert!(plain34(1).total_macs() < resnet34(1).total_macs());
    }

    #[test]
    fn every_resnet_depth_builds() {
        for d in [18, 34, 50, 101, 152] {
            let net = resnet(d, 1);
            assert!(net.len() > 20, "resnet{d}");
            assert!(!net.shortcut_edges().is_empty(), "resnet{d}");
        }
    }

    #[test]
    #[should_panic(expected = "no ResNet-77")]
    fn unknown_depth_panics() {
        let _ = resnet(77, 1);
    }

    #[test]
    fn first_bottleneck_stage_projects_despite_stride_one() {
        let net = resnet50(1);
        assert!(net.layer_by_name("conv2_1/proj").is_some());
        assert!(net.layer_by_name("conv2_2/proj").is_none());
    }

    #[test]
    fn downsampling_blocks_project_in_basic_nets() {
        let net = resnet34(1);
        assert!(net.layer_by_name("conv2_1/proj").is_none()); // 64 -> 64
        for s in 3..=5 {
            assert!(net.layer_by_name(&format!("conv{s}_1/proj")).is_some());
            assert!(net.layer_by_name(&format!("conv{s}_2/proj")).is_none());
        }
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let m1 = resnet18(1).total_macs();
        let m4 = resnet18(4).total_macs();
        assert_eq!(m4, 4 * m1);
    }
}
