//! MobileNet builders (Howard et al. 2017; Sandler et al., CVPR 2018).
//!
//! MobileNetV1 is a pure depthwise-separable chain (no shortcuts — a
//! control for the depthwise substrate); MobileNetV2's inverted-residual
//! blocks add residual connections around the narrow bottlenecks, so its
//! shortcut data is *small* relative to the expanded intermediate maps —
//! the opposite regime from ResNet, and a useful probe of the retention
//! policy.

use sm_tensor::Shape4;

use crate::{ConvSpec, DwConvSpec, LayerId, Network, NetworkBuilder};

/// MobileNetV1 (width 1.0): stem plus 13 depthwise-separable blocks.
pub fn mobilenet_v1(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("mobilenet_v1", Shape4::new(batch, 3, 224, 224));
    let x = b.input_id();
    let mut cur = b
        .conv("conv1", x, ConvSpec::relu(32, 3, 2, 1))
        .expect("stem");
    // (output channels, stride) of each separable block.
    let plan: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (channels, stride)) in plan.into_iter().enumerate() {
        let tag = format!("sep{}", i + 1);
        let dw = b
            .depthwise_conv(format!("{tag}/dw"), cur, DwConvSpec::relu(3, stride, 1))
            .expect("depthwise");
        cur = b
            .conv(format!("{tag}/pw"), dw, ConvSpec::relu(channels, 1, 1, 0))
            .expect("pointwise");
    }
    let gap = b.global_avg_pool("gap", cur).expect("gap");
    b.fc("fc1000", gap, 1000).expect("fc");
    b.finish().expect("mobilenet v1 builds")
}

/// One MobileNetV2 inverted-residual block: 1×1 expand (`expand ×` input
/// channels), 3×3 depthwise (stride `stride`), 1×1 linear projection to
/// `out_c`, with a residual add when the shape is preserved.
fn inverted_residual(
    b: &mut NetworkBuilder,
    tag: &str,
    input: LayerId,
    expand: usize,
    out_c: usize,
    stride: usize,
) -> LayerId {
    let in_c = b.shape_of(input).expect("live layer").c;
    let mut cur = input;
    if expand != 1 {
        cur = b
            .conv(
                format!("{tag}/expand"),
                cur,
                ConvSpec::relu(in_c * expand, 1, 1, 0),
            )
            .expect("expand");
    }
    let dw = b
        .depthwise_conv(format!("{tag}/dw"), cur, DwConvSpec::relu(3, stride, 1))
        .expect("depthwise");
    let proj = b
        .conv(
            format!("{tag}/project"),
            dw,
            ConvSpec::linear(out_c, 1, 1, 0),
        )
        .expect("project");
    if stride == 1 && in_c == out_c {
        b.eltwise_add(format!("{tag}/add"), input, proj, false)
            .expect("inverted residual add")
    } else {
        proj
    }
}

/// MobileNetV2 (width 1.0): the published `(t, c, n, s)` bottleneck table.
pub fn mobilenet_v2(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("mobilenet_v2", Shape4::new(batch, 3, 224, 224));
    let x = b.input_id();
    let mut cur = b
        .conv("conv1", x, ConvSpec::relu(32, 3, 2, 1))
        .expect("stem");
    let table: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for (stage, (t, c, n, s)) in table.into_iter().enumerate() {
        for block in 0..n {
            let stride = if block == 0 { s } else { 1 };
            cur = inverted_residual(
                &mut b,
                &format!("ir{}_{}", stage + 1, block + 1),
                cur,
                t,
                c,
                stride,
            );
        }
    }
    let head = b
        .conv("conv_head", cur, ConvSpec::relu(1280, 1, 1, 0))
        .expect("head");
    let gap = b.global_avg_pool("gap", head).expect("gap");
    b.fc("fc1000", gap, 1000).expect("fc");
    b.finish().expect("mobilenet v2 builds")
}

/// CIFAR-scale MobileNetV2-style network for functional verification: two
/// inverted-residual blocks on 32×32 input.
pub fn mobilenet_tiny(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("mobilenet_tiny", Shape4::new(batch, 3, 32, 32));
    let x = b.input_id();
    let stem = b
        .conv("conv1", x, ConvSpec::relu(8, 3, 2, 1))
        .expect("stem");
    let b1 = inverted_residual(&mut b, "ir1", stem, 1, 8, 1);
    let b2 = inverted_residual(&mut b, "ir2", b1, 6, 8, 1);
    let gap = b.global_avg_pool("gap", b2).expect("gap");
    b.fc("fc", gap, 10).expect("fc");
    b.finish().expect("tiny mobilenet builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GoldenExecutor;
    use crate::stats::NetworkStats;

    #[test]
    fn v1_cost_matches_published() {
        let net = mobilenet_v1(1);
        // ~0.57 GMACs, ~4.2 M params.
        let g = net.total_macs() as f64 / 1e9;
        assert!((0.5..0.65).contains(&g), "got {g} GMACs");
        let p = net.total_weight_elems() as f64 / 1e6;
        assert!((3.9..4.5).contains(&p), "got {p}M params");
        assert!(net.shortcut_edges().is_empty(), "V1 has no shortcuts");
        let last = net.layer_by_name("sep13/pw").unwrap().out_shape;
        assert_eq!((last.c, last.h, last.w), (1024, 7, 7));
    }

    #[test]
    fn v2_structure_matches_published() {
        let net = mobilenet_v2(1);
        // ~0.3 GMACs, ~3.4 M params.
        let g = net.total_macs() as f64 / 1e9;
        assert!((0.28..0.40).contains(&g), "got {g} GMACs");
        let p = net.total_weight_elems() as f64 / 1e6;
        assert!((3.0..3.8).contains(&p), "got {p}M params");
        // Residual adds exist only in the stride-1 repeat blocks:
        // 1+2+3+2+2+0 = 10.
        let adds = net.layers().iter().filter(|l| l.kind.is_junction()).count();
        assert_eq!(adds, 10);
        // The shortcut sources are the *narrow* bottleneck maps while the
        // expanded 6x intermediates dominate the data — the opposite regime
        // from ResNet's ~40%.
        let s = NetworkStats::of(&net);
        assert!(
            s.shortcut_share() > 0.02 && s.shortcut_share() < 0.10,
            "{}",
            s.shortcut_share()
        );
    }

    #[test]
    fn first_block_has_no_expansion_layer() {
        let net = mobilenet_v2(1);
        assert!(net.layer_by_name("ir1_1/expand").is_none());
        assert!(net.layer_by_name("ir2_1/expand").is_some());
    }

    #[test]
    fn tiny_mobilenet_executes_functionally() {
        let net = mobilenet_tiny(1);
        let outs = GoldenExecutor::new(&net, 21).run().unwrap();
        assert!(outs
            .last()
            .unwrap()
            .as_slice()
            .iter()
            .all(|x| x.is_finite()));
        assert!(net.layer_by_name("ir2/add").is_some());
    }
}
