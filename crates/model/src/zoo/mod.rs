//! Builders for the networks the paper evaluates, plus controls.
//!
//! The paper's evaluation set is SqueezeNet (with bypass), ResNet-34 and
//! ResNet-152; the rest of the family (ResNet-18/50/101, SqueezeNet v1.0/v1.1
//! without bypass, plain ResNets, VGG-16, AlexNet) is provided both for the
//! sensitivity studies and as no-shortcut controls.
//!
//! Every builder takes the batch size; shapes use ImageNet resolutions
//! (224×224 for ResNet/VGG, 227×227 for SqueezeNet/AlexNet, per the original
//! model definitions). The `*_tiny` builders produce CIFAR-scale graphs for
//! functional (value-level) verification, where the naive golden operators
//! are fast enough.

mod densenet;
mod googlenet;
mod mobilenet;
mod resnet;
mod small;
mod squeezenet;
mod vgg;

pub use densenet::{densenet121, densenet169, densenet_tiny, try_densenet_tiny};
pub use googlenet::{googlenet, try_googlenet};
pub use mobilenet::{mobilenet_tiny, mobilenet_v1, mobilenet_v2};
pub use resnet::{
    plain18, plain34, resnet, resnet101, resnet152, resnet18, resnet34, resnet50, try_resnet,
};
pub use small::{
    chain_tiny, resnet_tiny, squeezenet_tiny, toy_residual, try_chain_tiny, try_resnet_tiny,
};
pub use squeezenet::{
    squeezenet_v10, squeezenet_v10_complex_bypass, squeezenet_v10_simple_bypass, squeezenet_v11,
    try_squeezenet_v10, try_squeezenet_v10_complex_bypass, try_squeezenet_v10_simple_bypass,
    try_squeezenet_v11,
};
pub use vgg::{alexnet, try_alexnet, try_vgg16, vgg16};

use crate::{ModelError, Network};

/// Resolves a network by its CLI/registry name.
///
/// This is the single name table behind `smctl` and any config-driven
/// harness; names match the builder functions, plus the aliases the CLI has
/// always accepted (`squeezenet`, `resnet_tiny20`, `densenet_tiny4`).
///
/// # Errors
///
/// [`ModelError::InvalidBatch`] for batch 0, [`ModelError::UnknownNetwork`]
/// for an unregistered name.
pub fn try_by_name(name: &str, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    Ok(match name {
        "resnet18" => resnet18(batch),
        "resnet34" => resnet34(batch),
        "resnet50" => resnet50(batch),
        "resnet101" => resnet101(batch),
        "resnet152" => resnet152(batch),
        "plain18" => plain18(batch),
        "plain34" => plain34(batch),
        "squeezenet_v10" => try_squeezenet_v10(batch)?,
        "squeezenet_v10_simple_bypass" | "squeezenet" => try_squeezenet_v10_simple_bypass(batch)?,
        "squeezenet_v10_complex_bypass" => try_squeezenet_v10_complex_bypass(batch)?,
        "squeezenet_v11" => try_squeezenet_v11(batch)?,
        "vgg16" => try_vgg16(batch)?,
        "alexnet" => try_alexnet(batch)?,
        "googlenet" => try_googlenet(batch)?,
        "mobilenet_v1" => mobilenet_v1(batch),
        "mobilenet_v2" => mobilenet_v2(batch),
        "mobilenet_tiny" => mobilenet_tiny(batch),
        "densenet121" => densenet121(batch),
        "densenet169" => densenet169(batch),
        "toy_residual" => toy_residual(batch),
        "resnet_tiny20" => resnet_tiny(3, batch),
        "squeezenet_tiny" => squeezenet_tiny(batch),
        "densenet_tiny4" => densenet_tiny(4, batch),
        other => return Err(ModelError::UnknownNetwork(other.to_string())),
    })
}

/// The three networks of the paper's headline evaluation (abstract):
/// SqueezeNet (simple bypass), ResNet-34 and ResNet-152.
pub fn evaluated_networks(batch: usize) -> Vec<Network> {
    vec![
        squeezenet_v10_simple_bypass(batch),
        resnet34(batch),
        resnet152(batch),
    ]
}

/// The extended set used in sensitivity studies: the evaluated networks plus
/// the rest of the ResNet family and the no-shortcut controls.
pub fn extended_networks(batch: usize) -> Vec<Network> {
    vec![
        squeezenet_v10(batch),
        squeezenet_v10_simple_bypass(batch),
        squeezenet_v10_complex_bypass(batch),
        squeezenet_v11(batch),
        resnet18(batch),
        resnet34(batch),
        resnet50(batch),
        resnet101(batch),
        resnet152(batch),
        plain34(batch),
        vgg16(batch),
        alexnet(batch),
        googlenet(batch),
        densenet121(batch),
        mobilenet_v1(batch),
        mobilenet_v2(batch),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluated_set_matches_abstract() {
        let nets = evaluated_networks(1);
        let names: Vec<_> = nets.iter().map(|n| n.name().to_string()).collect();
        assert_eq!(
            names,
            ["squeezenet_v10_simple_bypass", "resnet34", "resnet152"]
        );
    }

    #[test]
    fn try_by_name_resolves_builders_and_rejects_malformed_input() {
        assert_eq!(try_by_name("resnet34", 2).unwrap().name(), "resnet34");
        assert_eq!(
            try_by_name("squeezenet", 1).unwrap().name(),
            "squeezenet_v10_simple_bypass"
        );
        assert_eq!(
            try_by_name("resnet34", 0),
            Err(crate::ModelError::InvalidBatch)
        );
        assert_eq!(
            try_by_name("resnet999", 1),
            Err(crate::ModelError::UnknownNetwork("resnet999".into()))
        );
    }

    #[test]
    fn try_resnet_rejects_unknown_depth_and_zero_batch() {
        assert_eq!(try_resnet(34, 1).unwrap().name(), "resnet34");
        assert_eq!(try_resnet(99, 1), Err(crate::ModelError::UnknownDepth(99)));
        assert_eq!(try_resnet(34, 0), Err(crate::ModelError::InvalidBatch));
    }

    #[test]
    fn tiny_builders_reject_malformed_sizes_with_typed_errors() {
        use crate::ModelError;
        assert_eq!(try_resnet_tiny(1, 1).unwrap().name(), "resnet_tiny8");
        assert_eq!(try_chain_tiny(3, 1).unwrap().name(), "chain3");
        assert_eq!(try_densenet_tiny(2, 1).unwrap().name(), "densenet_tiny2");
        assert_eq!(
            try_resnet_tiny(0, 1),
            Err(ModelError::InvalidSize {
                param: "blocks per stage",
                min: 1,
                got: 0
            })
        );
        assert_eq!(
            try_chain_tiny(0, 1),
            Err(ModelError::InvalidSize {
                param: "chain depth",
                min: 1,
                got: 0
            })
        );
        assert_eq!(
            try_densenet_tiny(0, 1),
            Err(ModelError::InvalidSize {
                param: "dense layers",
                min: 1,
                got: 0
            })
        );
        for bad_batch in [
            try_resnet_tiny(1, 0),
            try_chain_tiny(1, 0),
            try_densenet_tiny(1, 0),
        ] {
            assert_eq!(bad_batch, Err(ModelError::InvalidBatch));
        }
    }

    #[test]
    fn extended_set_builds_at_batch_4() {
        for net in extended_networks(4) {
            assert_eq!(net.input().out_shape.n, 4, "{}", net.name());
            assert!(net.len() > 10, "{}", net.name());
        }
    }
}
