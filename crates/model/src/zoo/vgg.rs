//! VGG-16 and AlexNet builders — shortcut-free controls.
//!
//! Neither network has bypass connections, so Shortcut Mining's benefit on
//! them comes solely from out–in buffer swapping (adjacent-layer reuse);
//! they bound the contribution of the shortcut-specific procedures.

use sm_tensor::Shape4;

use crate::{ConvSpec, ModelError, Network, NetworkBuilder, PoolSpec};

/// VGG-16 (configuration D): thirteen 3×3 convolutions in five pooled
/// stages, then three fully-connected layers.
pub fn vgg16(batch: usize) -> Network {
    try_vgg16(batch).expect("valid vgg16 request")
}

/// Fallible [`vgg16`]: rejects batch 0 with a typed [`ModelError`] and
/// propagates any builder error instead of panicking, for callers driven
/// by external input (the CLI, config-driven sweeps).
pub fn try_vgg16(batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    let mut b = NetworkBuilder::new("vgg16", Shape4::new(batch, 3, 224, 224));
    let mut cur = b.input_id();
    let stages: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (stage, &(convs, width)) in stages.iter().enumerate() {
        for conv in 0..convs {
            cur = b.conv(
                format!("conv{}_{}", stage + 1, conv + 1),
                cur,
                ConvSpec::relu(width, 3, 1, 1),
            )?;
        }
        cur = b.pool(format!("pool{}", stage + 1), cur, PoolSpec::max(2, 2, 0))?;
    }
    let fc6 = b.fc("fc6", cur, 4096)?;
    let fc7 = b.fc("fc7", fc6, 4096)?;
    b.fc("fc8", fc7, 1000)?;
    Ok(b.finish()?)
}

/// AlexNet (single-tower variant): five convolutions, three poolings, three
/// fully-connected layers.
pub fn alexnet(batch: usize) -> Network {
    try_alexnet(batch).expect("valid alexnet request")
}

/// Fallible [`alexnet`]: rejects batch 0 with a typed [`ModelError`] and
/// propagates any builder error instead of panicking.
pub fn try_alexnet(batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    let mut b = NetworkBuilder::new("alexnet", Shape4::new(batch, 3, 227, 227));
    let x = b.input_id();
    let c1 = b.conv("conv1", x, ConvSpec::relu(96, 11, 4, 0))?;
    let p1 = b.pool("pool1", c1, PoolSpec::max(3, 2, 0))?;
    let c2 = b.conv("conv2", p1, ConvSpec::relu(256, 5, 1, 2))?;
    let p2 = b.pool("pool2", c2, PoolSpec::max(3, 2, 0))?;
    let c3 = b.conv("conv3", p2, ConvSpec::relu(384, 3, 1, 1))?;
    let c4 = b.conv("conv4", c3, ConvSpec::relu(384, 3, 1, 1))?;
    let c5 = b.conv("conv5", c4, ConvSpec::relu(256, 3, 1, 1))?;
    let p5 = b.pool("pool5", c5, PoolSpec::max(3, 2, 0))?;
    let fc6 = b.fc("fc6", p5, 4096)?;
    let fc7 = b.fc("fc7", fc6, 4096)?;
    b.fc("fc8", fc7, 1000)?;
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_shapes_and_cost_match_published() {
        let net = vgg16(1);
        assert_eq!(
            net.layer_by_name("pool5").unwrap().out_shape,
            Shape4::new(1, 512, 7, 7)
        );
        // ~15.5 GMACs at 224x224.
        let g = net.total_macs() as f64 / 1e9;
        assert!((15.0..16.0).contains(&g), "got {g}");
        assert!(net.shortcut_edges().is_empty());
        // 138M parameters.
        let p = net.total_weight_elems() as f64 / 1e6;
        assert!((135.0..140.0).contains(&p), "got {p}M params");
    }

    #[test]
    fn fallible_builders_reject_batch_zero() {
        assert_eq!(try_vgg16(0), Err(crate::ModelError::InvalidBatch));
        assert_eq!(try_alexnet(0), Err(crate::ModelError::InvalidBatch));
        assert_eq!(try_vgg16(2).unwrap().name(), "vgg16");
        assert_eq!(try_alexnet(2).unwrap().name(), "alexnet");
    }

    #[test]
    fn alexnet_spatial_plan() {
        let net = alexnet(1);
        assert_eq!(
            net.layer_by_name("conv1").unwrap().out_shape,
            Shape4::new(1, 96, 55, 55)
        );
        assert_eq!(
            net.layer_by_name("pool5").unwrap().out_shape,
            Shape4::new(1, 256, 6, 6)
        );
        assert!(net.shortcut_edges().is_empty());
    }
}
