//! CIFAR-scale and toy networks for functional (value-level) verification.
//!
//! The golden-model operators in `sm-tensor` are naive loops, so functional
//! cross-checks between the baseline and Shortcut Mining simulators run on
//! these small graphs; the traffic/cycle experiments use the full ImageNet
//! graphs from the rest of the zoo, where only shapes matter.

use sm_tensor::Shape4;

use crate::{ConvSpec, ModelError, Network, NetworkBuilder, PoolSpec};

/// CIFAR-style residual network (He et al. §4.2): a 3×3 stem, then three
/// stages of `n` basic blocks at 16/32/64 channels on 32×32 input.
/// `resnet_tiny(3)` is the classic ResNet-20.
pub fn resnet_tiny(n: usize, batch: usize) -> Network {
    try_resnet_tiny(n, batch).expect("valid tiny resnet request")
}

/// Fallible [`resnet_tiny`]: rejects zero blocks-per-stage or batch 0 with a
/// typed [`ModelError`] instead of panicking, for callers driven by external
/// input (the CLI, config-driven sweeps).
pub fn try_resnet_tiny(n: usize, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    if n < 1 {
        return Err(ModelError::InvalidSize {
            param: "blocks per stage",
            min: 1,
            got: n,
        });
    }
    let mut b = NetworkBuilder::new(
        format!("resnet_tiny{}", 6 * n + 2),
        Shape4::new(batch, 3, 32, 32),
    );
    let x = b.input_id();
    let mut cur = b
        .conv("stem", x, ConvSpec::relu(16, 3, 1, 1))
        .expect("stem");
    for (stage, width) in [16usize, 32, 64].into_iter().enumerate() {
        for block in 0..n {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let tag = format!("s{stage}b{block}");
            let c1 = b
                .conv(format!("{tag}/a"), cur, ConvSpec::relu(width, 3, stride, 1))
                .expect("a");
            let c2 = b
                .conv(format!("{tag}/b"), c1, ConvSpec::linear(width, 3, 1, 1))
                .expect("b");
            let shortcut = if stride != 1 || b.shape_of(cur).expect("known").c != width {
                b.conv(
                    format!("{tag}/proj"),
                    cur,
                    ConvSpec::linear(width, 1, stride, 0),
                )
                .expect("proj")
            } else {
                cur
            };
            cur = b
                .eltwise_add(format!("{tag}/add"), shortcut, c2, true)
                .expect("add");
        }
    }
    let gap = b.global_avg_pool("gap", cur).expect("gap");
    b.fc("fc", gap, 10).expect("fc");
    Ok(b.finish()?)
}

/// A miniature SqueezeNet: stem, two fire modules (the second bypassed),
/// pooling and a classifier, on 32×32 input.
pub fn squeezenet_tiny(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("squeezenet_tiny", Shape4::new(batch, 3, 32, 32));
    let x = b.input_id();
    let c1 = b
        .conv("conv1", x, ConvSpec::relu(16, 3, 2, 1))
        .expect("conv1");
    let mut cur = b.pool("pool1", c1, PoolSpec::max(3, 2, 0)).expect("pool1");
    for idx in 2..=3 {
        let tag = format!("fire{idx}");
        let s = b
            .conv(format!("{tag}/squeeze1x1"), cur, ConvSpec::relu(8, 1, 1, 0))
            .expect("squeeze");
        let e1 = b
            .conv(format!("{tag}/expand1x1"), s, ConvSpec::relu(16, 1, 1, 0))
            .expect("e1");
        let e3 = b
            .conv(format!("{tag}/expand3x3"), s, ConvSpec::relu(16, 3, 1, 1))
            .expect("e3");
        let cat = b.concat(format!("{tag}/concat"), &[e1, e3]).expect("cat");
        cur = if idx == 3 {
            b.eltwise_add(format!("{tag}/bypass"), cur, cat, false)
                .expect("bypass")
        } else {
            cat
        };
    }
    let conv4 = b
        .conv("conv4", cur, ConvSpec::relu(10, 1, 1, 0))
        .expect("conv4");
    b.global_avg_pool("gap", conv4).expect("gap");
    b.finish().expect("tiny squeezenet builds")
}

/// The smallest interesting residual graph: two convolutions bridged by a
/// shortcut into an element-wise addition.
pub fn toy_residual(batch: usize) -> Network {
    let mut b = NetworkBuilder::new("toy_residual", Shape4::new(batch, 4, 8, 8));
    let x = b.input_id();
    let c1 = b.conv("c1", x, ConvSpec::relu(8, 3, 1, 1)).expect("c1");
    let c2 = b.conv("c2", c1, ConvSpec::relu(8, 3, 1, 1)).expect("c2");
    let c3 = b.conv("c3", c2, ConvSpec::linear(8, 3, 1, 1)).expect("c3");
    let add = b.eltwise_add("add", c1, c3, true).expect("add");
    let _ = b.conv("c4", add, ConvSpec::relu(8, 3, 1, 1)).expect("c4");
    b.finish().expect("toy builds")
}

/// A shortcut-free convolution chain (control for the toy graphs).
pub fn chain_tiny(depth: usize, batch: usize) -> Network {
    try_chain_tiny(depth, batch).expect("valid chain request")
}

/// Fallible [`chain_tiny`]: rejects a zero-layer chain or batch 0 with a
/// typed [`ModelError`] instead of panicking.
pub fn try_chain_tiny(depth: usize, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    if depth < 1 {
        return Err(ModelError::InvalidSize {
            param: "chain depth",
            min: 1,
            got: depth,
        });
    }
    let mut b = NetworkBuilder::new(format!("chain{depth}"), Shape4::new(batch, 4, 8, 8));
    let mut cur = b.input_id();
    for i in 0..depth {
        cur = b
            .conv(format!("c{i}"), cur, ConvSpec::relu(8, 3, 1, 1))
            .expect("chain conv");
    }
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GoldenExecutor;

    #[test]
    fn resnet20_structure() {
        let net = resnet_tiny(3, 1);
        assert_eq!(net.name(), "resnet_tiny20");
        let adds = net.layers().iter().filter(|l| l.kind.is_junction()).count();
        assert_eq!(adds, 9);
        assert_eq!(
            net.layer_by_name("gap").unwrap().out_shape,
            Shape4::new(1, 64, 1, 1)
        );
    }

    #[test]
    fn tiny_networks_execute_functionally() {
        for net in [
            resnet_tiny(1, 1),
            squeezenet_tiny(1),
            toy_residual(1),
            chain_tiny(3, 1),
        ] {
            let outs = GoldenExecutor::new(&net, 5).run().unwrap();
            let last = outs.last().unwrap();
            assert!(
                last.as_slice().iter().all(|x| x.is_finite()),
                "{} produced non-finite output",
                net.name()
            );
        }
    }

    #[test]
    fn toy_residual_has_exactly_one_residual_shortcut() {
        let net = toy_residual(1);
        let shortcut = net
            .shortcut_edges()
            .into_iter()
            .find(|e| net.layer(e.to).kind.is_junction())
            .unwrap();
        assert_eq!(net.layer(shortcut.from).name, "c1");
        assert_eq!(shortcut.skip_distance(), 2);
    }

    #[test]
    fn chain_has_no_shortcuts() {
        assert!(chain_tiny(5, 1).shortcut_edges().is_empty());
    }
}
