//! GoogLeNet / Inception-v1 builder (Szegedy et al., CVPR 2015).
//!
//! Inception modules are four-way fork-joins: 1×1, 1×1→3×3, 1×1→5×5 and
//! pool→1×1 branches concatenated along channels. Every branch output must
//! survive on chip until the concatenation, so the module is a dense source
//! of short-range shortcut edges — a different reuse pattern from ResNet's
//! long residual skips. The auxiliary classifiers are omitted: they exist
//! for training only and carry no inference traffic.

use sm_tensor::Shape4;

use crate::{ConvSpec, LayerId, ModelError, Network, NetworkBuilder, PoolSpec};

/// Channel plan of one inception module:
/// `(b1, b3_reduce, b3, b5_reduce, b5, pool_proj)`.
type Inception = (usize, usize, usize, usize, usize, usize);

/// The published module table (3a..5b).
const MODULES: [(&str, Inception); 9] = [
    ("3a", (64, 96, 128, 16, 32, 32)),
    ("3b", (128, 128, 192, 32, 96, 64)),
    ("4a", (192, 96, 208, 16, 48, 64)),
    ("4b", (160, 112, 224, 24, 64, 64)),
    ("4c", (128, 128, 256, 24, 64, 64)),
    ("4d", (112, 144, 288, 32, 64, 64)),
    ("4e", (256, 160, 320, 32, 128, 128)),
    ("5a", (256, 160, 320, 32, 128, 128)),
    ("5b", (384, 192, 384, 48, 128, 128)),
];

fn inception(
    b: &mut NetworkBuilder,
    tag: &str,
    input: LayerId,
    plan: Inception,
) -> Result<LayerId, ModelError> {
    let (b1, b3r, b3, b5r, b5, pp) = plan;
    let br1 = b.conv(
        format!("inception_{tag}/1x1"),
        input,
        ConvSpec::relu(b1, 1, 1, 0),
    )?;
    let r3 = b.conv(
        format!("inception_{tag}/3x3_reduce"),
        input,
        ConvSpec::relu(b3r, 1, 1, 0),
    )?;
    let br3 = b.conv(
        format!("inception_{tag}/3x3"),
        r3,
        ConvSpec::relu(b3, 3, 1, 1),
    )?;
    let r5 = b.conv(
        format!("inception_{tag}/5x5_reduce"),
        input,
        ConvSpec::relu(b5r, 1, 1, 0),
    )?;
    let br5 = b.conv(
        format!("inception_{tag}/5x5"),
        r5,
        ConvSpec::relu(b5, 5, 1, 2),
    )?;
    let pool = b.pool(
        format!("inception_{tag}/pool"),
        input,
        PoolSpec::max(3, 1, 1),
    )?;
    let brp = b.conv(
        format!("inception_{tag}/pool_proj"),
        pool,
        ConvSpec::relu(pp, 1, 1, 0),
    )?;
    Ok(b.concat(format!("inception_{tag}/concat"), &[br1, br3, br5, brp])?)
}

/// GoogLeNet (Inception-v1), inference graph without auxiliary classifiers.
pub fn googlenet(batch: usize) -> Network {
    try_googlenet(batch).expect("valid googlenet request")
}

/// Fallible [`googlenet`]: rejects batch 0 with a typed [`ModelError`] and
/// propagates any builder error instead of panicking, for callers driven
/// by external input (the CLI, config-driven sweeps).
pub fn try_googlenet(batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    let mut b = NetworkBuilder::new("googlenet", Shape4::new(batch, 3, 224, 224));
    let x = b.input_id();
    let c1 = b.conv("conv1", x, ConvSpec::relu(64, 7, 2, 3))?;
    let p1 = b.pool("pool1", c1, PoolSpec::max(3, 2, 1))?;
    let c2r = b.conv("conv2_reduce", p1, ConvSpec::relu(64, 1, 1, 0))?;
    let c2 = b.conv("conv2", c2r, ConvSpec::relu(192, 3, 1, 1))?;
    let mut cur = b.pool("pool2", c2, PoolSpec::max(3, 2, 1))?;

    for (tag, plan) in MODULES {
        cur = inception(&mut b, tag, cur, plan)?;
        // Max-poolings after 3b and 4e.
        if tag == "3b" || tag == "4e" {
            cur = b.pool(format!("pool_{tag}"), cur, PoolSpec::max(3, 2, 1))?;
        }
    }

    let gap = b.global_avg_pool("gap", cur)?;
    b.fc("fc1000", gap, 1000)?;
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::NetworkStats;

    #[test]
    fn module_output_channels_match_the_published_table() {
        let net = googlenet(1);
        for (tag, (b1, _, b3, _, b5, pp)) in MODULES {
            let out = net
                .layer_by_name(&format!("inception_{tag}/concat"))
                .unwrap()
                .out_shape;
            assert_eq!(out.c, b1 + b3 + b5 + pp, "{tag}");
        }
        // 5b output: 1024 channels at 7x7.
        let last = net.layer_by_name("inception_5b/concat").unwrap().out_shape;
        assert_eq!((last.c, last.h, last.w), (1024, 7, 7));
    }

    #[test]
    fn cost_matches_published_flops_and_params() {
        let net = googlenet(1);
        // ~1.5 GMACs, ~6-7 M params (no aux heads).
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.3..1.8).contains(&g), "got {g} GMACs");
        let p = net.total_weight_elems() as f64 / 1e6;
        assert!((5.5..7.5).contains(&p), "got {p}M params");
    }

    #[test]
    fn fallible_builder_rejects_batch_zero() {
        assert_eq!(try_googlenet(0), Err(ModelError::InvalidBatch));
        assert_eq!(try_googlenet(2).unwrap().name(), "googlenet");
    }

    #[test]
    fn inception_forks_create_shortcut_edges() {
        let net = googlenet(1);
        let s = NetworkStats::of(&net);
        // Four-way fork-joins: at least 3 non-adjacent edges per module
        // (input to the later branches, early branches to the concat).
        assert!(s.shortcut_edge_count >= 9 * 3, "{}", s.shortcut_edge_count);
        assert_eq!(s.junction_count, 9);
        assert!(s.shortcut_share() > 0.3);
    }
}
