//! DenseNet builders (Huang et al., CVPR 2017) — the extension stressor.
//!
//! Dense connectivity is the extreme case of cross-layer reuse: inside a
//! dense block, every layer's input is the channel concatenation of *all*
//! previous layers' outputs, so feature maps must survive across the entire
//! remainder of their block. The Shortcut Mining paper evaluates residual
//! and bypass networks; DenseNet is the natural "future work" workload and
//! is included here to probe where the prefix-residency discipline and the
//! bank pool saturate (see the `ext_densenet` experiment).

use sm_tensor::Shape4;

use crate::{ConvSpec, LayerId, ModelError, Network, NetworkBuilder, PoolSpec};

struct DenseSpec {
    name: &'static str,
    /// Layers per dense block.
    blocks: [usize; 4],
    /// Channels added by each dense layer.
    growth: usize,
}

fn dense_layer(b: &mut NetworkBuilder, tag: &str, input: LayerId, growth: usize) -> LayerId {
    // BN-ReLU-1x1 (bottleneck to 4*growth) then BN-ReLU-3x3 (growth).
    let bottleneck = b
        .conv(
            format!("{tag}/1x1"),
            input,
            ConvSpec::relu(4 * growth, 1, 1, 0),
        )
        .expect("dense 1x1");
    let new = b
        .conv(
            format!("{tag}/3x3"),
            bottleneck,
            ConvSpec::relu(growth, 3, 1, 1),
        )
        .expect("dense 3x3");
    // Dense connectivity: the running concatenation grows by `growth`.
    b.concat(format!("{tag}/concat"), &[input, new])
        .expect("dense concat")
}

fn build(spec: &DenseSpec, batch: usize) -> Network {
    let mut b = NetworkBuilder::new(spec.name, Shape4::new(batch, 3, 224, 224));
    let x = b.input_id();
    let stem = b
        .conv("conv1", x, ConvSpec::relu(2 * spec.growth, 7, 2, 3))
        .expect("stem");
    let mut cur = b
        .pool("pool1", stem, PoolSpec::max(3, 2, 1))
        .expect("stem pool");

    for (block, &layers) in spec.blocks.iter().enumerate() {
        for layer in 0..layers {
            cur = dense_layer(
                &mut b,
                &format!("dense{}_{}", block + 1, layer + 1),
                cur,
                spec.growth,
            );
        }
        if block + 1 < spec.blocks.len() {
            // Transition: 1x1 conv halving channels, then 2x2 average pool.
            let channels = b.shape_of(cur).expect("live layer").c / 2;
            let t = b
                .conv(
                    format!("transition{}/1x1", block + 1),
                    cur,
                    ConvSpec::relu(channels, 1, 1, 0),
                )
                .expect("transition conv");
            cur = b
                .pool(
                    format!("transition{}/pool", block + 1),
                    t,
                    PoolSpec::avg(2, 2, 0),
                )
                .expect("transition pool");
        }
    }

    let gap = b.global_avg_pool("gap", cur).expect("gap");
    b.fc("fc1000", gap, 1000).expect("fc");
    b.finish().expect("densenet builds")
}

/// DenseNet-121 (`[6, 12, 24, 16]`, growth 32).
pub fn densenet121(batch: usize) -> Network {
    build(
        &DenseSpec {
            name: "densenet121",
            blocks: [6, 12, 24, 16],
            growth: 32,
        },
        batch,
    )
}

/// DenseNet-169 (`[6, 12, 32, 32]`, growth 32).
pub fn densenet169(batch: usize) -> Network {
    build(
        &DenseSpec {
            name: "densenet169",
            blocks: [6, 12, 32, 32],
            growth: 32,
        },
        batch,
    )
}

/// A CIFAR-scale dense network for functional verification: one dense block
/// of `layers` dense layers at growth 8 on 16×16 input.
pub fn densenet_tiny(layers: usize, batch: usize) -> Network {
    try_densenet_tiny(layers, batch).expect("valid tiny densenet request")
}

/// Fallible [`densenet_tiny`]: rejects an empty dense block or batch 0 with
/// a typed [`ModelError`] instead of panicking.
pub fn try_densenet_tiny(layers: usize, batch: usize) -> Result<Network, ModelError> {
    if batch == 0 {
        return Err(ModelError::InvalidBatch);
    }
    if layers < 1 {
        return Err(ModelError::InvalidSize {
            param: "dense layers",
            min: 1,
            got: layers,
        });
    }
    let mut b = NetworkBuilder::new(
        format!("densenet_tiny{layers}"),
        Shape4::new(batch, 3, 16, 16),
    );
    let x = b.input_id();
    let mut cur = b
        .conv("stem", x, ConvSpec::relu(16, 3, 1, 1))
        .expect("stem");
    for i in 0..layers {
        cur = dense_layer(&mut b, &format!("dense{i}"), cur, 8);
    }
    let gap = b.global_avg_pool("gap", cur).expect("gap");
    b.fc("fc", gap, 10).expect("fc");
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::GoldenExecutor;
    use crate::stats::NetworkStats;

    #[test]
    fn densenet121_channel_plan_matches_published() {
        let net = densenet121(1);
        // Block outputs: 64+6*32=256, halved to 128; 128+12*32=512 -> 256;
        // 256+24*32=1024 -> 512; 512+16*32=1024.
        assert_eq!(
            net.layer_by_name("dense1_6/concat").unwrap().out_shape.c,
            256
        );
        assert_eq!(
            net.layer_by_name("transition1/1x1").unwrap().out_shape.c,
            128
        );
        assert_eq!(
            net.layer_by_name("dense2_12/concat").unwrap().out_shape.c,
            512
        );
        assert_eq!(
            net.layer_by_name("dense3_24/concat").unwrap().out_shape.c,
            1024
        );
        let last = net.layer_by_name("dense4_16/concat").unwrap().out_shape;
        assert_eq!((last.c, last.h, last.w), (1024, 7, 7));
        // ~8 M params, ~2.8-3 GMACs.
        let p = net.total_weight_elems() as f64 / 1e6;
        assert!((6.5..9.0).contains(&p), "got {p}M params");
    }

    #[test]
    fn dense_connectivity_maximizes_shortcut_share() {
        let s121 = NetworkStats::of(&densenet121(1));
        // The running concatenation feeds both the next 1x1 and the next
        // concat: well over half of all feature-map data is shortcut data.
        assert!(s121.shortcut_share() > 0.45, "{}", s121.shortcut_share());
        assert_eq!(s121.junction_count, 6 + 12 + 24 + 16);
    }

    #[test]
    fn densenet169_is_deeper() {
        let n121 = densenet121(1);
        let n169 = densenet169(1);
        assert!(n169.len() > n121.len());
        assert!(n169.total_macs() > n121.total_macs());
    }

    #[test]
    fn tiny_densenet_executes_functionally() {
        let net = densenet_tiny(3, 1);
        let outs = GoldenExecutor::new(&net, 9).run().unwrap();
        assert!(outs
            .last()
            .unwrap()
            .as_slice()
            .iter()
            .all(|x| x.is_finite()));
        assert_eq!(
            net.layer_by_name("dense2/concat").unwrap().out_shape.c,
            16 + 3 * 8
        );
    }
}
