//! CNN layer IR, network DAGs with shortcut edges, and network builders.
//!
//! `sm-model` describes *what* the accelerator executes. A [`Network`] is a
//! directed acyclic graph of [`Layer`]s in a fixed topological schedule — the
//! layer-by-layer processing order a tile-based accelerator follows. Edges
//! carry feature maps; an edge whose consumer is not the next scheduled layer
//! is a **shortcut edge** (residual connections in ResNet, bypasses in
//! SqueezeNet), the reuse target of Shortcut Mining.
//!
//! The crate also provides:
//!
//! * [`zoo`] — builders for the evaluated networks (ResNet-18/34/50/101/152,
//!   plain variants, SqueezeNet v1.0/v1.1 with and without bypass, VGG-16,
//!   AlexNet, plus small CIFAR-scale networks for functional verification).
//! * [`graph`] — a serializable JSON graph format with a validating loader
//!   and exporter, so arbitrary user-supplied DAGs (U-Net-style long skips,
//!   multi-branch concats) enter the same pipeline as the zoo; shortcut
//!   structure is auto-detected ([`graph::ShortcutReport`]).
//! * [`liveness`] — feature-map lifetime analysis.
//! * [`stats`] — feature-map data accounting, including the shortcut share of
//!   total feature-map data (the paper's ~40% motivation figure).
//! * [`exec`] — a golden-model executor running the reference operators from
//!   `sm-tensor` over a network, used to verify the cycle simulators are
//!   value-preserving.
//!
//! # Example
//!
//! ```
//! use sm_model::zoo;
//! use sm_model::stats::NetworkStats;
//!
//! let net = zoo::resnet34(1);
//! let stats = NetworkStats::of(&net);
//! // Roughly a third to 40% of ResNet's feature-map data is shortcut data.
//! assert!(stats.shortcut_share() > 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod network;

pub mod exec;
pub mod graph;
pub mod liveness;
pub mod stats;
pub mod zoo;

pub use error::ModelError;
pub use layer::{ConvSpec, DwConvSpec, Layer, LayerId, LayerKind, PoolKind, PoolSpec};
pub use network::{BuildError, Edge, Network, NetworkBuilder};
