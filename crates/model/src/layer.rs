use std::fmt;

use serde::Serialize;
use sm_tensor::Shape4;

/// Identifier of a layer within one [`crate::Network`].
///
/// Layer ids are dense indices into the network's schedule: `LayerId(k)` is
/// the `k`-th layer executed. This makes "is this edge a shortcut?" a simple
/// index comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct LayerId(pub usize);

impl LayerId {
    /// Position of the layer in the execution schedule.
    pub const fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Convolution layer specification (square kernel, symmetric stride/pad).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ConvSpec {
    /// Number of output channels.
    pub out_channels: usize,
    /// Kernel extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
    /// Whether a ReLU is fused onto the output (does not affect shapes or
    /// traffic, tracked for functional fidelity).
    pub relu: bool,
}

impl ConvSpec {
    /// Creates a convolution spec with a fused ReLU.
    pub const fn relu(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        ConvSpec {
            out_channels,
            kernel,
            stride,
            pad,
            relu: true,
        }
    }

    /// Creates a convolution spec without an activation (used before
    /// residual additions, where the ReLU follows the junction).
    pub const fn linear(out_channels: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        ConvSpec {
            out_channels,
            kernel,
            stride,
            pad,
            relu: false,
        }
    }
}

/// Depthwise convolution specification: one single-channel filter per
/// input channel (output channels equal input channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct DwConvSpec {
    /// Kernel extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
    /// Fused ReLU on the output.
    pub relu: bool,
}

impl DwConvSpec {
    /// Creates a depthwise spec with a fused ReLU.
    pub const fn relu(kernel: usize, stride: usize, pad: usize) -> Self {
        DwConvSpec {
            kernel,
            stride,
            pad,
            relu: true,
        }
    }

    /// Creates a depthwise spec without an activation.
    pub const fn linear(kernel: usize, stride: usize, pad: usize) -> Self {
        DwConvSpec {
            kernel,
            stride,
            pad,
            relu: false,
        }
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling (fixed divisor).
    Avg,
}

/// Pooling layer specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct PoolSpec {
    /// Pooling flavour.
    pub kind: PoolKind,
    /// Window extent.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
}

impl PoolSpec {
    /// Max-pooling spec.
    pub const fn max(kernel: usize, stride: usize, pad: usize) -> Self {
        PoolSpec {
            kind: PoolKind::Max,
            kernel,
            stride,
            pad,
        }
    }

    /// Average-pooling spec.
    pub const fn avg(kernel: usize, stride: usize, pad: usize) -> Self {
        PoolSpec {
            kind: PoolKind::Avg,
            kernel,
            stride,
            pad,
        }
    }
}

/// The operator a layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum LayerKind {
    /// Network input pseudo-layer; produces the input feature map.
    Input,
    /// 2-D convolution.
    Conv(ConvSpec),
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv(DwConvSpec),
    /// 2-D pooling.
    Pool(PoolSpec),
    /// Global average pooling to `1x1` spatial.
    GlobalAvgPool,
    /// Fully-connected layer with the given output feature count.
    Fc {
        /// Number of output features.
        out_features: usize,
    },
    /// Element-wise addition of exactly two inputs (residual junction). The
    /// flag records a fused ReLU after the addition.
    EltwiseAdd {
        /// Fused ReLU after the addition.
        relu: bool,
    },
    /// Channel concatenation of two or more inputs (fire-module /
    /// bypass junction).
    ConcatChannels,
}

impl LayerKind {
    /// Short operator mnemonic used in reports (`conv`, `pool`, `add`, …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Input => "input",
            LayerKind::Conv(_) => "conv",
            LayerKind::DepthwiseConv(_) => "dwconv",
            LayerKind::Pool(_) => "pool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::Fc { .. } => "fc",
            LayerKind::EltwiseAdd { .. } => "add",
            LayerKind::ConcatChannels => "concat",
        }
    }

    /// Whether the layer is a shortcut junction (consumes a shortcut
    /// operand): element-wise add or concat.
    pub fn is_junction(&self) -> bool {
        matches!(
            self,
            LayerKind::EltwiseAdd { .. } | LayerKind::ConcatChannels
        )
    }
}

/// One layer of a network: an operator plus its resolved input/output shapes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Layer {
    /// Identifier (schedule position).
    pub id: LayerId,
    /// Human-readable name, unique within the network (e.g. `"conv3_2/b"`).
    pub name: String,
    /// Operator.
    pub kind: LayerKind,
    /// Producers of this layer's inputs, in operand order.
    pub inputs: Vec<LayerId>,
    /// Resolved output shape.
    pub out_shape: Shape4,
}

impl Layer {
    /// Number of elements in the output feature map.
    pub fn out_elems(&self) -> usize {
        self.out_shape.len()
    }

    /// Number of weight elements the layer reads (zero for non-parametric
    /// layers). Bias elements are ignored: they are negligible against
    /// feature maps and kernels.
    pub fn weight_elems(&self, in_shapes: &[Shape4]) -> usize {
        match self.kind {
            LayerKind::Conv(spec) => {
                let c_in: usize = in_shapes.iter().map(|s| s.c).sum();
                spec.out_channels * c_in * spec.kernel * spec.kernel
            }
            LayerKind::DepthwiseConv(spec) => {
                let c: usize = in_shapes.iter().map(|s| s.c).sum();
                c * spec.kernel * spec.kernel
            }
            LayerKind::Fc { out_features } => {
                let in_features: usize = in_shapes.iter().map(Shape4::per_image).sum();
                out_features * in_features
            }
            _ => 0,
        }
    }

    /// Number of multiply-accumulate operations the layer performs for the
    /// full batch. Poolings and junctions count one op per output element so
    /// throughput denominators stay finite for every layer.
    pub fn macs(&self, in_shapes: &[Shape4]) -> u64 {
        match self.kind {
            LayerKind::Input => 0,
            LayerKind::Conv(spec) => {
                let c_in: usize = in_shapes.iter().map(|s| s.c).sum();
                self.out_shape.len() as u64 * (c_in * spec.kernel * spec.kernel) as u64
            }
            LayerKind::Fc { .. } => {
                let in_features: usize = in_shapes.iter().map(Shape4::per_image).sum();
                self.out_shape.len() as u64 * in_features as u64
            }
            LayerKind::DepthwiseConv(spec) => {
                self.out_shape.len() as u64 * (spec.kernel * spec.kernel) as u64
            }
            LayerKind::Pool(spec) => {
                self.out_shape.len() as u64 * (spec.kernel * spec.kernel) as u64
            }
            LayerKind::GlobalAvgPool => in_shapes.iter().map(|s| s.len() as u64).sum(),
            LayerKind::EltwiseAdd { .. } | LayerKind::ConcatChannels => self.out_shape.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_layer() -> Layer {
        Layer {
            id: LayerId(1),
            name: "conv1".into(),
            kind: LayerKind::Conv(ConvSpec::relu(64, 3, 1, 1)),
            inputs: vec![LayerId(0)],
            out_shape: Shape4::new(1, 64, 56, 56),
        }
    }

    #[test]
    fn conv_weight_and_mac_counts() {
        let l = conv_layer();
        let ins = [Shape4::new(1, 32, 56, 56)];
        assert_eq!(l.weight_elems(&ins), 64 * 32 * 9);
        assert_eq!(l.macs(&ins), (64 * 56 * 56) as u64 * (32 * 9) as u64);
    }

    #[test]
    fn fc_counts_flattened_features() {
        let l = Layer {
            id: LayerId(2),
            name: "fc".into(),
            kind: LayerKind::Fc { out_features: 10 },
            inputs: vec![LayerId(1)],
            out_shape: Shape4::new(1, 10, 1, 1),
        };
        let ins = [Shape4::new(1, 512, 2, 2)];
        assert_eq!(l.weight_elems(&ins), 10 * 512 * 4);
        assert_eq!(l.macs(&ins), 10 * 512 * 4);
    }

    #[test]
    fn junctions_have_no_weights() {
        let l = Layer {
            id: LayerId(3),
            name: "add".into(),
            kind: LayerKind::EltwiseAdd { relu: true },
            inputs: vec![LayerId(1), LayerId(2)],
            out_shape: Shape4::new(1, 64, 56, 56),
        };
        let ins = [Shape4::new(1, 64, 56, 56); 2];
        assert_eq!(l.weight_elems(&ins), 0);
        assert_eq!(l.macs(&ins), (64 * 56 * 56) as u64);
        assert!(l.kind.is_junction());
        assert!(!conv_layer().kind.is_junction());
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(LayerKind::Input.mnemonic(), "input");
        assert_eq!(LayerKind::ConcatChannels.mnemonic(), "concat");
        assert_eq!(LayerKind::GlobalAvgPool.mnemonic(), "gap");
    }

    #[test]
    fn layer_id_orders_by_schedule() {
        assert!(LayerId(2) > LayerId(1));
        assert_eq!(format!("{}", LayerId(7)), "L7");
        assert_eq!(LayerId(7).index(), 7);
    }
}
