//! Property tests over the network builder: the consumer index is the exact
//! inverse of the input lists, shortcut classification is consistent with
//! liveness, and the statistics decompose.

use proptest::prelude::*;

use sm_model::liveness::Liveness;
use sm_model::stats::NetworkStats;
use sm_model::{ConvSpec, Network, NetworkBuilder, PoolSpec};
use sm_tensor::Shape4;

#[derive(Debug, Clone)]
enum Op {
    Conv { c: u8, k: bool },
    Pool,
    Add { pick: u8 },
    Fork { c: u8 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (1u8..5, any::<bool>()).prop_map(|(c, k)| Op::Conv { c, k }),
            1 => Just(Op::Pool),
            2 => (0u8..8).prop_map(|pick| Op::Add { pick }),
            1 => (1u8..3).prop_map(|c| Op::Fork { c }),
        ],
        1..16,
    )
}

fn build(steps: &[Op]) -> Network {
    let mut b = NetworkBuilder::new("prop", Shape4::new(1, 4, 16, 16));
    let mut cur = b.input_id();
    let mut history = vec![cur];
    for (n, step) in steps.iter().enumerate() {
        let shape = b.shape_of(cur).expect("live");
        match step {
            Op::Conv { c, k } => {
                let (k, pad) = if *k { (3, 1) } else { (1, 0) };
                cur = b
                    .conv(
                        format!("c{n}"),
                        cur,
                        ConvSpec::relu(*c as usize * 2, k, 1, pad),
                    )
                    .expect("conv");
            }
            Op::Pool => {
                if shape.h < 4 {
                    continue;
                }
                cur = b
                    .pool(format!("p{n}"), cur, PoolSpec::max(2, 2, 0))
                    .expect("pool");
            }
            Op::Add { pick } => {
                let candidates: Vec<_> = history
                    .iter()
                    .copied()
                    .filter(|&id| id != cur && b.shape_of(id).expect("live") == shape)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let other = candidates[*pick as usize % candidates.len()];
                cur = b
                    .eltwise_add(format!("a{n}"), other, cur, true)
                    .expect("add");
            }
            Op::Fork { c } => {
                let e1 = b
                    .conv(
                        format!("f{n}e1"),
                        cur,
                        ConvSpec::relu(*c as usize * 2, 1, 1, 0),
                    )
                    .expect("e1");
                let e3 = b
                    .conv(
                        format!("f{n}e3"),
                        cur,
                        ConvSpec::relu(*c as usize * 2, 3, 1, 1),
                    )
                    .expect("e3");
                cur = b.concat(format!("f{n}cat"), &[e1, e3]).expect("cat");
            }
        }
        history.push(cur);
    }
    if history.len() == 1 {
        b.conv("fallback", cur, ConvSpec::relu(4, 3, 1, 1))
            .expect("conv");
    }
    b.finish().expect("builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// consumers() is exactly the inverse relation of inputs().
    #[test]
    fn consumers_invert_inputs(steps in ops()) {
        let net = build(&steps);
        for layer in net.layers() {
            for &input in &layer.inputs {
                prop_assert!(net.consumers(input).contains(&layer.id));
            }
            for &consumer in net.consumers(layer.id) {
                prop_assert!(net.layer(consumer).inputs.contains(&layer.id));
                prop_assert!(consumer > layer.id, "schedule is topological");
            }
        }
    }

    /// Edge count equals the sum of input arities; shortcut edges are
    /// exactly the non-adjacent ones.
    #[test]
    fn edges_decompose(steps in ops()) {
        let net = build(&steps);
        let arity_sum: usize = net.layers().iter().map(|l| l.inputs.len()).sum();
        let edges = net.edges();
        prop_assert_eq!(edges.len(), arity_sum);
        let shortcut = net.shortcut_edges().len();
        let adjacent = edges.iter().filter(|e| e.to.index() == e.from.index() + 1).count();
        prop_assert_eq!(shortcut + adjacent, edges.len());
        for e in net.shortcut_edges() {
            prop_assert!(e.skip_distance() >= 1);
        }
    }

    /// Liveness: a feature map is live precisely between producer and last
    /// consumer; peak live set is at least the largest single operand.
    #[test]
    fn liveness_brackets_consumption(steps in ops()) {
        let net = build(&steps);
        let lv = Liveness::of(&net);
        for layer in net.layers() {
            let lt = lv.lifetime(layer.id);
            prop_assert_eq!(lt.producer, layer.id);
            match net.consumers(layer.id).last() {
                Some(&last) => prop_assert_eq!(lt.last_use, last),
                None => prop_assert_eq!(lt.last_use, layer.id),
            }
            for &c in net.consumers(layer.id) {
                prop_assert!(lt.live_at(c), "live at every consumer");
            }
        }
        let (peak, _) = lv.peak_live_elems();
        let max_operand = net
            .layers()
            .iter()
            .flat_map(|l| l.inputs.iter().map(|&p| net.layer(p).out_elems()))
            .max()
            .unwrap_or(0);
        prop_assert!(peak >= max_operand);
    }

    /// Stats decompose: shortcut share in [0,1], shortcut bytes bounded by
    /// total bytes, MACs positive when convs exist.
    #[test]
    fn stats_are_consistent(steps in ops()) {
        let net = build(&steps);
        let s = NetworkStats::of(&net);
        prop_assert!(s.shortcut_fm_elems <= s.total_fm_elems);
        prop_assert!((0.0..=1.0).contains(&s.shortcut_share()));
        prop_assert_eq!(s.layer_count, net.len() - 1);
        if s.conv_count > 0 {
            prop_assert!(s.macs > 0);
            prop_assert!(s.weight_elems > 0);
        }
        prop_assert_eq!(s.shortcut_edge_count, net.shortcut_edges().len());
    }
}
