use std::error::Error;
use std::fmt;

use crate::{BankId, LogicalBufferId};

/// Error produced by bank-pool and logical-buffer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BufferError {
    /// The pool cannot satisfy a bank request.
    OutOfBanks {
        /// Banks requested.
        requested: usize,
        /// Banks currently free.
        available: usize,
    },
    /// The logical buffer id is stale (already freed) or never existed.
    UnknownBuffer(LogicalBufferId),
    /// The operation is not allowed on a pinned buffer (e.g. freeing it).
    Pinned(LogicalBufferId),
    /// Spilling was requested on a buffer with no banks left.
    EmptyBuffer(LogicalBufferId),
    /// A zero-bank allocation was requested.
    ZeroAllocation,
    /// The bank id is outside the pool.
    UnknownBank(BankId),
    /// The bank is owned by a logical buffer and cannot be disabled
    /// without evacuation.
    BankInUse(BankId),
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::OutOfBanks {
                requested,
                available,
            } => write!(f, "requested {requested} banks but only {available} free"),
            BufferError::UnknownBuffer(id) => write!(f, "unknown or freed logical buffer {id:?}"),
            BufferError::Pinned(id) => write!(f, "logical buffer {id:?} is pinned"),
            BufferError::EmptyBuffer(id) => write!(f, "logical buffer {id:?} has no banks"),
            BufferError::ZeroAllocation => write!(f, "cannot allocate zero banks"),
            BufferError::UnknownBank(bank) => write!(f, "bank {bank:?} is outside the pool"),
            BufferError::BankInUse(bank) => {
                write!(f, "bank {bank:?} is owned and must be evacuated first")
            }
        }
    }
}

impl Error for BufferError {}
