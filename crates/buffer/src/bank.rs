use serde::{Deserialize, Serialize};

use crate::{BufferError, LogicalBufferId};

/// Identifier of one physical SRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct BankId(pub usize);

/// Geometry of the on-chip bank pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankPoolConfig {
    /// Number of physical banks.
    pub bank_count: usize,
    /// Capacity of each bank in bytes.
    pub bank_bytes: u64,
}

impl BankPoolConfig {
    /// Creates a pool geometry.
    pub const fn new(bank_count: usize, bank_bytes: u64) -> Self {
        BankPoolConfig {
            bank_count,
            bank_bytes,
        }
    }

    /// Total pool capacity in bytes.
    pub const fn total_bytes(&self) -> u64 {
        self.bank_count as u64 * self.bank_bytes
    }

    /// Banks needed to hold `bytes` (at least one for a non-zero request).
    pub const fn banks_for_bytes(&self, bytes: u64) -> usize {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.bank_bytes) as usize
        }
    }
}

/// Pool of physical banks with single-owner tracking.
///
/// Every bank is either free or owned by exactly one logical buffer; the
/// pool enforces this invariant and the property tests in this crate pin it
/// down under arbitrary operation sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankPool {
    config: BankPoolConfig,
    owner: Vec<Option<LogicalBufferId>>,
    free: Vec<BankId>,
    disabled: Vec<bool>,
}

impl BankPool {
    /// Creates a pool with all banks free.
    pub fn new(config: BankPoolConfig) -> Self {
        BankPool {
            config,
            owner: vec![None; config.bank_count],
            // Popping from the tail hands out low-numbered banks first.
            free: (0..config.bank_count).rev().map(BankId).collect(),
            disabled: vec![false; config.bank_count],
        }
    }

    /// Pool geometry.
    pub fn config(&self) -> BankPoolConfig {
        self.config
    }

    /// Number of free banks.
    pub fn free_banks(&self) -> usize {
        self.free.len()
    }

    /// Number of banks marked faulty and removed from circulation.
    pub fn disabled_banks(&self) -> usize {
        self.disabled.iter().filter(|d| **d).count()
    }

    /// Whether a bank has been disabled.
    ///
    /// # Panics
    ///
    /// Panics when the bank id is outside the pool.
    pub fn is_disabled(&self, bank: BankId) -> bool {
        self.disabled[bank.0]
    }

    /// Free capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.len() as u64 * self.config.bank_bytes
    }

    /// Current owner of a bank, `None` when free.
    ///
    /// # Panics
    ///
    /// Panics when the bank id is outside the pool.
    pub fn owner(&self, bank: BankId) -> Option<LogicalBufferId> {
        self.owner[bank.0]
    }

    /// Takes `count` free banks for `owner`.
    ///
    /// # Errors
    ///
    /// [`BufferError::OutOfBanks`] when fewer than `count` banks are free;
    /// the pool is left unchanged in that case.
    pub fn take(
        &mut self,
        count: usize,
        owner: LogicalBufferId,
    ) -> Result<Vec<BankId>, BufferError> {
        if count > self.free.len() {
            return Err(BufferError::OutOfBanks {
                requested: count,
                available: self.free.len(),
            });
        }
        let mut banks = Vec::with_capacity(count);
        for _ in 0..count {
            let bank = self.free.pop().expect("checked above");
            self.owner[bank.0] = Some(owner);
            banks.push(bank);
        }
        Ok(banks)
    }

    /// Returns banks to the free pool.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when a bank was already free — an ownership
    /// bug in the caller.
    pub fn give_back(&mut self, banks: &[BankId]) {
        for &bank in banks {
            debug_assert!(self.owner[bank.0].is_some(), "double free of {bank:?}");
            self.owner[bank.0] = None;
            self.free.push(bank);
        }
    }

    /// Re-tags ownership of banks to a new logical buffer without moving
    /// data — the O(1)-per-bank mechanism behind buffer relabelling.
    pub fn retag(&mut self, banks: &[BankId], new_owner: LogicalBufferId) {
        for &bank in banks {
            debug_assert!(self.owner[bank.0].is_some(), "retag of free {bank:?}");
            self.owner[bank.0] = Some(new_owner);
        }
    }

    /// Marks a free bank as faulty, removing it from circulation for the
    /// rest of the run. The bank must already be free: callers evacuate an
    /// owned bank first (see `LogicalBuffers::revoke_bank`). Disabling an
    /// already-disabled bank is a no-op.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBank`] when the id is outside the pool,
    /// [`BufferError::BankInUse`] when a logical buffer still owns the bank.
    pub fn disable(&mut self, bank: BankId) -> Result<(), BufferError> {
        if bank.0 >= self.config.bank_count {
            return Err(BufferError::UnknownBank(bank));
        }
        if self.disabled[bank.0] {
            return Ok(());
        }
        if self.owner[bank.0].is_some() {
            return Err(BufferError::BankInUse(bank));
        }
        self.free.retain(|b| *b != bank);
        self.disabled[bank.0] = true;
        Ok(())
    }

    /// Verifies the conservation invariant: every bank is free xor owned
    /// xor disabled, and the free list has no duplicates. Used by tests and
    /// debug asserts.
    pub fn check_conservation(&self) -> bool {
        let mut seen = vec![false; self.config.bank_count];
        for b in &self.free {
            if seen[b.0] || self.owner[b.0].is_some() || self.disabled[b.0] {
                return false;
            }
            seen[b.0] = true;
        }
        if self
            .owner
            .iter()
            .zip(&self.disabled)
            .any(|(o, d)| o.is_some() && *d)
        {
            return false;
        }
        let owned = self.owner.iter().filter(|o| o.is_some()).count();
        owned + self.free.len() + self.disabled_banks() == self.config.bank_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OWNER_A: LogicalBufferId = LogicalBufferId(100);
    const OWNER_B: LogicalBufferId = LogicalBufferId(101);

    #[test]
    fn banks_for_bytes_rounds_up() {
        let c = BankPoolConfig::new(8, 1024);
        assert_eq!(c.banks_for_bytes(0), 0);
        assert_eq!(c.banks_for_bytes(1), 1);
        assert_eq!(c.banks_for_bytes(1024), 1);
        assert_eq!(c.banks_for_bytes(1025), 2);
        assert_eq!(c.total_bytes(), 8192);
    }

    #[test]
    fn take_and_give_back_round_trip() {
        let mut pool = BankPool::new(BankPoolConfig::new(4, 512));
        let banks = pool.take(3, OWNER_A).unwrap();
        assert_eq!(pool.free_banks(), 1);
        assert!(banks.iter().all(|&b| pool.owner(b) == Some(OWNER_A)));
        pool.give_back(&banks);
        assert_eq!(pool.free_banks(), 4);
        assert_eq!(pool.free_bytes(), 2048);
        assert!(pool.check_conservation());
    }

    #[test]
    fn overcommit_fails_without_side_effects() {
        let mut pool = BankPool::new(BankPoolConfig::new(2, 512));
        let _held = pool.take(1, OWNER_A).unwrap();
        let err = pool.take(2, OWNER_B).unwrap_err();
        assert_eq!(
            err,
            BufferError::OutOfBanks {
                requested: 2,
                available: 1
            }
        );
        assert_eq!(pool.free_banks(), 1);
        assert!(pool.check_conservation());
    }

    #[test]
    fn retag_transfers_ownership_in_place() {
        let mut pool = BankPool::new(BankPoolConfig::new(4, 512));
        let banks = pool.take(2, OWNER_A).unwrap();
        pool.retag(&banks, OWNER_B);
        assert!(banks.iter().all(|&b| pool.owner(b) == Some(OWNER_B)));
        assert_eq!(pool.free_banks(), 2);
        assert!(pool.check_conservation());
    }

    #[test]
    fn low_banks_are_handed_out_first() {
        let mut pool = BankPool::new(BankPoolConfig::new(4, 512));
        let banks = pool.take(2, OWNER_A).unwrap();
        assert_eq!(banks, vec![BankId(0), BankId(1)]);
    }

    #[test]
    fn disabled_banks_leave_circulation() {
        let mut pool = BankPool::new(BankPoolConfig::new(4, 512));
        pool.disable(BankId(1)).unwrap();
        pool.disable(BankId(1)).unwrap(); // idempotent
        assert_eq!(pool.disabled_banks(), 1);
        assert!(pool.is_disabled(BankId(1)));
        assert_eq!(pool.free_banks(), 3);
        assert!(pool.check_conservation());
        // The disabled bank is never handed out again.
        let banks = pool.take(3, OWNER_A).unwrap();
        assert!(!banks.contains(&BankId(1)));
        assert!(matches!(
            pool.take(1, OWNER_B),
            Err(BufferError::OutOfBanks { .. })
        ));
    }

    #[test]
    fn disable_rejects_owned_and_unknown_banks() {
        let mut pool = BankPool::new(BankPoolConfig::new(2, 512));
        let banks = pool.take(1, OWNER_A).unwrap();
        assert_eq!(
            pool.disable(banks[0]),
            Err(BufferError::BankInUse(banks[0]))
        );
        assert_eq!(
            pool.disable(BankId(9)),
            Err(BufferError::UnknownBank(BankId(9)))
        );
        assert!(pool.check_conservation());
    }
}
