use serde::Serialize;

/// The conventional (baseline) buffer architecture: SRAM capacity statically
/// partitioned between an input feature-map buffer, an output feature-map
/// buffer and a weight buffer, each internally double-buffered so DRAM
/// transfers overlap compute.
///
/// The inflexibility this struct encodes is exactly what the paper's logical
/// buffers remove: at a layer boundary the OFM buffer's contents cannot be
/// handed to the IFM buffer without a copy, so baseline accelerators write
/// every output to DRAM and read it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FixedBufferConfig {
    /// Input feature-map buffer capacity in bytes (total across both halves
    /// of the double buffer).
    pub ifm_bytes: u64,
    /// Output feature-map buffer capacity in bytes.
    pub ofm_bytes: u64,
    /// Weight buffer capacity in bytes.
    pub weight_bytes: u64,
}

impl FixedBufferConfig {
    /// Creates a configuration.
    pub const fn new(ifm_bytes: u64, ofm_bytes: u64, weight_bytes: u64) -> Self {
        FixedBufferConfig {
            ifm_bytes,
            ofm_bytes,
            weight_bytes,
        }
    }

    /// Splits a total SRAM budget the way the baseline accelerator does:
    /// 40% IFM, 40% OFM, 20% weights.
    pub fn from_total(total_bytes: u64) -> Self {
        let ifm = total_bytes * 2 / 5;
        let ofm = total_bytes * 2 / 5;
        FixedBufferConfig {
            ifm_bytes: ifm,
            ofm_bytes: ofm,
            weight_bytes: total_bytes - ifm - ofm,
        }
    }

    /// Total SRAM capacity.
    pub const fn total_bytes(&self) -> u64 {
        self.ifm_bytes + self.ofm_bytes + self.weight_bytes
    }

    /// Usable capacity of one half of the IFM double buffer.
    pub const fn ifm_half(&self) -> u64 {
        self.ifm_bytes / 2
    }

    /// Usable capacity of one half of the OFM double buffer.
    pub const fn ofm_half(&self) -> u64 {
        self.ofm_bytes / 2
    }

    /// Usable capacity of one half of the weight double buffer.
    pub const fn weight_half(&self) -> u64 {
        self.weight_bytes / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_total_partitions_exactly() {
        let c = FixedBufferConfig::from_total(1_000_000);
        assert_eq!(c.total_bytes(), 1_000_000);
        assert_eq!(c.ifm_bytes, 400_000);
        assert_eq!(c.ofm_bytes, 400_000);
        assert_eq!(c.weight_bytes, 200_000);
    }

    #[test]
    fn halves_are_half() {
        let c = FixedBufferConfig::new(1024, 2048, 512);
        assert_eq!(c.ifm_half(), 512);
        assert_eq!(c.ofm_half(), 1024);
        assert_eq!(c.weight_half(), 256);
        assert_eq!(c.total_bytes(), 3584);
    }
}
