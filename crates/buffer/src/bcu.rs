//! Buffer Control Unit (BCU): the hardware that makes logical buffers real.
//!
//! A logical buffer is a *set* of physical banks; the datapath addresses it
//! with a flat logical offset. The BCU translates `(logical buffer, offset)`
//! to `(bank, bank offset)` through a small mapping table — one bank-id
//! entry per bank a buffer can own. Because the translation is a table
//! lookup plus a mux, relabelling a buffer (the out–in swap) costs one
//! register write, which is why the simulator charges relabels nothing.
//!
//! This module models the two mapping disciplines and quantifies the BCU's
//! hardware cost, reproducing the style of overhead analysis the paper's
//! FPGA prototype reports:
//!
//! * [`BankMapping::Linear`] — offsets fill one bank before the next.
//!   Simple, but consecutive words live in the same bank, so a wide
//!   datapath port conflicts with itself.
//! * [`BankMapping::Interleaved`] — consecutive words round-robin across
//!   the buffer's banks, letting `n` banks serve `n` words per cycle.
//! * [`BcuCost`] — mapping-table bits and an access-conflict estimator.

use serde::Serialize;

use crate::{BankId, BankPoolConfig};

/// How logical offsets spread across a buffer's banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BankMapping {
    /// Fill bank 0 completely, then bank 1, …
    Linear,
    /// Round-robin words of `word_bytes` across the banks.
    Interleaved {
        /// Interleave granularity in bytes.
        word_bytes: u64,
    },
}

/// Translates flat logical offsets of one logical buffer to physical
/// locations.
#[derive(Debug, Clone, PartialEq)]
pub struct BankTranslator<'a> {
    banks: &'a [BankId],
    bank_bytes: u64,
    mapping: BankMapping,
}

impl<'a> BankTranslator<'a> {
    /// Creates a translator over a buffer's bank list.
    pub fn new(banks: &'a [BankId], bank_bytes: u64, mapping: BankMapping) -> Self {
        BankTranslator {
            banks,
            bank_bytes,
            mapping,
        }
    }

    /// Capacity covered by the translation.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks.len() as u64 * self.bank_bytes
    }

    /// Translates a logical byte offset to `(bank, offset-within-bank)`.
    ///
    /// Returns `None` when the offset is outside the buffer.
    pub fn translate(&self, offset: u64) -> Option<(BankId, u64)> {
        if offset >= self.capacity_bytes() || self.banks.is_empty() {
            return None;
        }
        match self.mapping {
            BankMapping::Linear => {
                let slot = (offset / self.bank_bytes) as usize;
                Some((self.banks[slot], offset % self.bank_bytes))
            }
            BankMapping::Interleaved { word_bytes } => {
                let w = word_bytes.max(1);
                let word = offset / w;
                let n = self.banks.len() as u64;
                let slot = (word % n) as usize;
                let word_in_bank = word / n;
                Some((self.banks[slot], word_in_bank * w + offset % w))
            }
        }
    }

    /// Cycles to service `accesses` logical offsets in one datapath beat:
    /// accesses to distinct banks proceed in parallel; same-bank accesses
    /// serialize. The maximum per-bank count is the stall depth.
    pub fn conflict_cycles(&self, accesses: &[u64]) -> u64 {
        let mut per_bank = std::collections::HashMap::new();
        for &offset in accesses {
            if let Some((bank, _)) = self.translate(offset) {
                *per_bank.entry(bank).or_insert(0u64) += 1;
            }
        }
        per_bank.values().copied().max().unwrap_or(0)
    }
}

/// Hardware cost of the BCU for a pool geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BcuCost {
    /// Bits of one mapping-table entry (a bank id).
    pub entry_bits: u64,
    /// Entries across all concurrently live logical buffers.
    pub table_entries: u64,
    /// Total mapping-table bits.
    pub table_bits: u64,
    /// SRAM bits of the feature-map pool (for the overhead ratio).
    pub sram_bits: u64,
}

impl BcuCost {
    /// Estimates BCU cost: each of up to `max_logical_buffers` concurrently
    /// live logical buffers carries a full bank-id table (worst case: it
    /// could own every bank).
    pub fn estimate(pool: BankPoolConfig, max_logical_buffers: u64) -> BcuCost {
        let entry_bits = (pool.bank_count.max(2) as f64).log2().ceil() as u64;
        let table_entries = pool.bank_count as u64 * max_logical_buffers;
        BcuCost {
            entry_bits,
            table_entries,
            table_bits: entry_bits * table_entries,
            sram_bits: pool.total_bytes() * 8,
        }
    }

    /// Mapping-table bits as a fraction of the SRAM they manage.
    pub fn overhead_fraction(&self) -> f64 {
        self.table_bits as f64 / self.sram_bits.max(1) as f64
    }

    /// Mapping-table size in whole bytes (rounded up) — the footprint an
    /// ECC scrub of the table walks each layer.
    pub fn table_bytes(&self) -> u64 {
        self.table_bits.div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn banks(ids: &[usize]) -> Vec<BankId> {
        ids.iter().map(|&i| BankId(i)).collect()
    }

    #[test]
    fn linear_translation_fills_banks_in_order() {
        let b = banks(&[5, 2, 9]);
        let t = BankTranslator::new(&b, 1024, BankMapping::Linear);
        assert_eq!(t.translate(0), Some((BankId(5), 0)));
        assert_eq!(t.translate(1023), Some((BankId(5), 1023)));
        assert_eq!(t.translate(1024), Some((BankId(2), 0)));
        assert_eq!(t.translate(2048 + 7), Some((BankId(9), 7)));
        assert_eq!(t.translate(3 * 1024), None);
        assert_eq!(t.capacity_bytes(), 3072);
    }

    #[test]
    fn interleaved_translation_round_robins_words() {
        let b = banks(&[0, 1]);
        let t = BankTranslator::new(&b, 1024, BankMapping::Interleaved { word_bytes: 8 });
        assert_eq!(t.translate(0), Some((BankId(0), 0)));
        assert_eq!(t.translate(8), Some((BankId(1), 0)));
        assert_eq!(t.translate(16), Some((BankId(0), 8)));
        assert_eq!(t.translate(19), Some((BankId(0), 11)));
        assert_eq!(t.translate(2048), None);
    }

    #[test]
    fn every_offset_maps_to_a_unique_location() {
        // Bijectivity over the whole capacity, both mappings.
        for mapping in [
            BankMapping::Linear,
            BankMapping::Interleaved { word_bytes: 4 },
        ] {
            let b = banks(&[3, 1, 4]);
            let t = BankTranslator::new(&b, 64, mapping);
            let mut seen = std::collections::HashSet::new();
            for off in 0..t.capacity_bytes() {
                let loc = t.translate(off).expect("in range");
                assert!(loc.1 < 64);
                assert!(seen.insert(loc), "{mapping:?}: duplicate {loc:?}");
            }
            assert_eq!(seen.len() as u64, t.capacity_bytes());
        }
    }

    #[test]
    fn interleaving_removes_wide_access_conflicts() {
        let b = banks(&[0, 1, 2, 3]);
        let linear = BankTranslator::new(&b, 1024, BankMapping::Linear);
        let inter = BankTranslator::new(&b, 1024, BankMapping::Interleaved { word_bytes: 2 });
        // A 4-word contiguous datapath beat (offsets 0, 2, 4, 6).
        let beat = [0u64, 2, 4, 6];
        assert_eq!(linear.conflict_cycles(&beat), 4, "all in bank 0");
        assert_eq!(inter.conflict_cycles(&beat), 1, "one word per bank");
        assert_eq!(inter.conflict_cycles(&[]), 0);
    }

    #[test]
    fn bcu_overhead_is_negligible() {
        // Default pool: 32 banks x 10 KiB, up to 8 live logical buffers.
        let cost = BcuCost::estimate(BankPoolConfig::new(32, 10 * 1024), 8);
        assert_eq!(cost.entry_bits, 5);
        assert_eq!(cost.table_entries, 256);
        assert_eq!(cost.table_bits, 1280);
        assert_eq!(cost.table_bytes(), 160);
        // Well under 0.1% of the SRAM it manages (1280 / 2.6M bits).
        assert!(
            cost.overhead_fraction() < 1e-3,
            "{}",
            cost.overhead_fraction()
        );
    }
}
