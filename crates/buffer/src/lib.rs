//! On-chip buffer substrate: physical banks, a bank pool, and **logical
//! buffers**.
//!
//! The paper's enabling observation is that conventional accelerators bind
//! SRAM banks *statically* to an input buffer and an output buffer, so data
//! sitting in the output buffer at the end of a layer cannot simply *become*
//! the next layer's input — it must round-trip through DRAM. `sm-buffer`
//! models both worlds:
//!
//! * [`FixedBufferConfig`] — the conventional architecture: capacities
//!   statically split between an IFM buffer, an OFM buffer and a weight
//!   buffer, each internally double-buffered.
//! * [`LogicalBuffers`] — the paper's architecture: a [`BankPool`] of
//!   physical banks onto which logical buffers (input / output / shortcut)
//!   are mapped dynamically. Role changes are O(1) relabels
//!   ([`LogicalBuffers::relabel`]), shortcut buffers can be **pinned** across
//!   intermediate layers, and capacity pressure is relieved by spilling one
//!   bank at a time ([`LogicalBuffers::spill_bank`]).
//!
//! Contents are tracked as [`FmRegion`] descriptors (which feature map, how
//! many elements resident) rather than raw data: the traffic and cycle
//! results depend only on *where* data is, and the functional engines in
//! `sm-core` reconstruct values from the region descriptors.
//!
//! # Example
//!
//! ```
//! use sm_buffer::{BankPoolConfig, BufferRole, LogicalBuffers};
//!
//! # fn main() -> Result<(), sm_buffer::BufferError> {
//! let mut bufs = LogicalBuffers::new(BankPoolConfig::new(8, 1024));
//! let ob = bufs.alloc_bytes(BufferRole::Output, 3000)?; // 3 banks
//! // The layer finished: its output buffer becomes the next input buffer.
//! bufs.relabel(ob, BufferRole::Input);
//! assert_eq!(bufs.buffer(ob)?.role(), BufferRole::Input);
//! assert_eq!(bufs.free_banks(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod error;
mod fixed;
mod logical;
mod stats;

pub mod bcu;

pub use bank::{BankId, BankPool, BankPoolConfig};
pub use error::BufferError;
pub use fixed::FixedBufferConfig;
pub use logical::{
    BufferRole, FmRegion, LogicalBuffer, LogicalBufferId, LogicalBuffers, Revocation,
};
pub use stats::BufferStats;
