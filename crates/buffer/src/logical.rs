use serde::Serialize;

use crate::{BankId, BankPool, BankPoolConfig, BufferError, BufferStats};

/// Handle to a logical buffer. Handles are generation-free but never reused
/// within one [`LogicalBuffers`] instance, so a freed handle stays invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct LogicalBufferId(pub usize);

/// Role a logical buffer currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BufferRole {
    /// Holds the feature map the current layer reads.
    Input,
    /// Collects the feature map the current layer produces.
    Output,
    /// Holds pinned shortcut data awaiting its junction.
    Shortcut,
    /// Holds weights streamed for the current layer.
    Weight,
}

/// Which feature map (or fraction of one) a logical buffer holds.
///
/// Residency is a *prefix* in element order: elements `[0, resident_elems)`
/// are on chip; the rest, if any, live in DRAM. The prefix convention
/// mirrors how the simulated accelerator streams output tiles: the portion
/// that no longer fits is the tail, which is written out as it is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FmRegion {
    /// Schedule index of the producing layer.
    pub producer: usize,
    /// Total elements of the feature map.
    pub total_elems: usize,
    /// Elements resident on chip (prefix).
    pub resident_elems: usize,
}

impl FmRegion {
    /// A fully resident feature map.
    pub const fn full(producer: usize, total_elems: usize) -> Self {
        FmRegion {
            producer,
            total_elems,
            resident_elems: total_elems,
        }
    }

    /// Whether the whole feature map is on chip.
    pub const fn is_full(&self) -> bool {
        self.resident_elems == self.total_elems
    }

    /// Elements that live only in DRAM. A resident count above the total
    /// is an accounting bug; debug builds assert, release builds saturate.
    pub fn missing_elems(&self) -> usize {
        debug_assert!(
            self.resident_elems <= self.total_elems,
            "resident {} exceeds total {}",
            self.resident_elems,
            self.total_elems
        );
        self.total_elems.saturating_sub(self.resident_elems)
    }
}

/// One logical buffer: a role, a set of physical banks, byte occupancy and
/// an optional content descriptor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LogicalBuffer {
    id: LogicalBufferId,
    role: BufferRole,
    banks: Vec<BankId>,
    used_bytes: u64,
    pinned: bool,
    contents: Option<FmRegion>,
}

impl LogicalBuffer {
    /// Handle of this buffer.
    pub fn id(&self) -> LogicalBufferId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> BufferRole {
        self.role
    }

    /// Physical banks backing the buffer.
    pub fn banks(&self) -> &[BankId] {
        &self.banks
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Whether the buffer is pinned (survives layer transitions).
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Content descriptor, when set.
    pub fn contents(&self) -> Option<FmRegion> {
        self.contents
    }
}

/// Outcome of revoking one physical bank from service (fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Revocation {
    /// The bank was free or already out of service; no data moved.
    WasFree,
    /// The bank was owned: the owner shrank by one bank and evicted the
    /// bytes that no longer fit. The caller is responsible for sending the
    /// evicted bytes to DRAM and trimming any content descriptor.
    Evicted {
        /// Buffer that owned the revoked bank.
        owner: LogicalBufferId,
        /// Stored bytes that overflowed the shrunken capacity.
        evicted_bytes: u64,
    },
}

/// The paper's logical-buffer architecture: dynamic mapping from logical
/// input/output/shortcut buffers onto a pool of physical banks.
///
/// All state-changing operations update [`BufferStats`], which the
/// simulators fold into their run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalBuffers {
    pool: BankPool,
    buffers: Vec<Option<LogicalBuffer>>,
    stats: BufferStats,
}

impl LogicalBuffers {
    /// Creates the manager over a fresh bank pool.
    pub fn new(config: BankPoolConfig) -> Self {
        LogicalBuffers {
            pool: BankPool::new(config),
            buffers: Vec::new(),
            stats: BufferStats::default(),
        }
    }

    /// Pool geometry.
    pub fn config(&self) -> BankPoolConfig {
        self.pool.config()
    }

    /// Number of free banks in the pool.
    pub fn free_banks(&self) -> usize {
        self.pool.free_banks()
    }

    /// Free pool capacity in bytes.
    pub fn free_bytes(&self) -> u64 {
        self.pool.free_bytes()
    }

    /// Accumulated operation statistics.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Live logical buffers, in handle order.
    pub fn iter(&self) -> impl Iterator<Item = &LogicalBuffer> {
        self.buffers.iter().flatten()
    }

    /// The buffer behind a handle.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale or foreign handles.
    pub fn buffer(&self, id: LogicalBufferId) -> Result<&LogicalBuffer, BufferError> {
        self.buffers
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or(BufferError::UnknownBuffer(id))
    }

    fn buffer_mut(&mut self, id: LogicalBufferId) -> Result<&mut LogicalBuffer, BufferError> {
        self.buffers
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(BufferError::UnknownBuffer(id))
    }

    /// Allocates a logical buffer backed by `banks` physical banks.
    ///
    /// # Errors
    ///
    /// [`BufferError::ZeroAllocation`] for zero banks,
    /// [`BufferError::OutOfBanks`] when the pool cannot satisfy the request.
    pub fn alloc(
        &mut self,
        role: BufferRole,
        banks: usize,
    ) -> Result<LogicalBufferId, BufferError> {
        if banks == 0 {
            return Err(BufferError::ZeroAllocation);
        }
        let id = LogicalBufferId(self.buffers.len());
        let taken = self.pool.take(banks, id)?;
        self.buffers.push(Some(LogicalBuffer {
            id,
            role,
            banks: taken,
            used_bytes: 0,
            pinned: false,
            contents: None,
        }));
        self.stats.allocations += 1;
        Ok(id)
    }

    /// Allocates a logical buffer sized for `bytes` (rounded up to banks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogicalBuffers::alloc`].
    pub fn alloc_bytes(
        &mut self,
        role: BufferRole,
        bytes: u64,
    ) -> Result<LogicalBufferId, BufferError> {
        let banks = self.config().banks_for_bytes(bytes).max(1);
        self.alloc(role, banks)
    }

    /// Frees a logical buffer, returning its banks to the pool.
    ///
    /// # Errors
    ///
    /// [`BufferError::Pinned`] when the buffer is still pinned,
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn free(&mut self, id: LogicalBufferId) -> Result<(), BufferError> {
        let buf = self.buffer(id)?;
        if buf.pinned {
            return Err(BufferError::Pinned(id));
        }
        let buf = self.buffers[id.0].take().expect("checked above");
        self.pool.give_back(&buf.banks);
        self.stats.frees += 1;
        Ok(())
    }

    /// Changes a buffer's role in place — the out–in swap primitive. No
    /// data moves; only the role tag changes.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn relabel(&mut self, id: LogicalBufferId, role: BufferRole) -> Result<(), BufferError> {
        let buf = self.buffer_mut(id)?;
        buf.role = role;
        self.stats.relabels += 1;
        Ok(())
    }

    /// Pins a buffer so layer transitions cannot free it (shortcut storing).
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn pin(&mut self, id: LogicalBufferId) -> Result<(), BufferError> {
        let stats = &mut self.stats;
        let buf = self
            .buffers
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(BufferError::UnknownBuffer(id))?;
        if !buf.pinned {
            buf.pinned = true;
            stats.pins += 1;
        }
        Ok(())
    }

    /// Unpins a buffer (shortcut consumed at its junction).
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn unpin(&mut self, id: LogicalBufferId) -> Result<(), BufferError> {
        self.buffer_mut(id)?.pinned = false;
        Ok(())
    }

    /// Records `bytes` written into the buffer (clamped to capacity) and
    /// counts the SRAM activity.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn write(&mut self, id: LogicalBufferId, bytes: u64) -> Result<(), BufferError> {
        let cap = self.capacity_bytes(id)?;
        let buf = self.buffer_mut(id)?;
        buf.used_bytes = (buf.used_bytes + bytes).min(cap);
        self.stats.sram_bytes_written += bytes;
        Ok(())
    }

    /// Records `bytes` read from the buffer (SRAM activity only).
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn read(&mut self, id: LogicalBufferId, bytes: u64) -> Result<(), BufferError> {
        self.buffer(id)?;
        self.stats.sram_bytes_read += bytes;
        Ok(())
    }

    /// Sets the content descriptor.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn set_contents(
        &mut self,
        id: LogicalBufferId,
        region: Option<FmRegion>,
    ) -> Result<(), BufferError> {
        self.buffer_mut(id)?.contents = region;
        Ok(())
    }

    /// Capacity of a buffer in bytes.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn capacity_bytes(&self, id: LogicalBufferId) -> Result<u64, BufferError> {
        Ok(self.buffer(id)?.banks.len() as u64 * self.config().bank_bytes)
    }

    /// Releases one bank from the tail of a buffer back to the pool,
    /// returning the bank and how many stored bytes were evicted with it.
    ///
    /// This is the capacity-pressure relief valve: a pinned shortcut buffer
    /// shrinks bank by bank, and only the evicted bytes ever travel to DRAM.
    /// The buffer's content descriptor, if any, loses the corresponding
    /// tail elements via the caller (which knows the element size).
    ///
    /// # Errors
    ///
    /// [`BufferError::EmptyBuffer`] when no banks remain,
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn spill_bank(&mut self, id: LogicalBufferId) -> Result<(BankId, u64), BufferError> {
        let bank_bytes = self.config().bank_bytes;
        let buf = self.buffer_mut(id)?;
        let bank = buf.banks.pop().ok_or(BufferError::EmptyBuffer(id))?;
        let new_cap = buf.banks.len() as u64 * bank_bytes;
        let evicted = buf.used_bytes.saturating_sub(new_cap);
        buf.used_bytes -= evicted;
        self.pool.give_back(&[bank]);
        self.stats.spills += 1;
        Ok((bank, evicted))
    }

    /// Moves every bank of `src` into `dst` and frees the `src` handle,
    /// without touching data — the concatenation take-over primitive: the
    /// junction's output buffer absorbs its operands' banks in place.
    ///
    /// `dst`'s occupancy grows by `src`'s occupancy (clamped to the merged
    /// capacity); `src`'s pin state is discarded.
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBuffer`] when either handle is stale, and the
    /// handles must differ ([`BufferError::UnknownBuffer`] on `src` is
    /// returned for a self-merge).
    pub fn absorb(
        &mut self,
        dst: LogicalBufferId,
        src: LogicalBufferId,
    ) -> Result<(), BufferError> {
        if dst == src {
            return Err(BufferError::UnknownBuffer(src));
        }
        self.buffer(dst)?;
        self.buffer(src)?;
        let src_buf = self.buffers[src.0].take().expect("checked above");
        self.pool.retag(&src_buf.banks, dst);
        let dst_buf = self.buffers[dst.0].as_mut().expect("checked above");
        dst_buf.banks.extend(src_buf.banks);
        let cap = dst_buf.banks.len() as u64 * self.pool.config().bank_bytes;
        dst_buf.used_bytes = (dst_buf.used_bytes + src_buf.used_bytes).min(cap);
        self.stats.frees += 1;
        Ok(())
    }

    /// Grows a buffer by `banks` additional banks from the pool.
    ///
    /// # Errors
    ///
    /// [`BufferError::OutOfBanks`] when the pool cannot satisfy the request,
    /// [`BufferError::UnknownBuffer`] for stale handles.
    pub fn grow(&mut self, id: LogicalBufferId, banks: usize) -> Result<(), BufferError> {
        self.buffer(id)?;
        let taken = self.pool.take(banks, id)?;
        self.buffer_mut(id)
            .expect("existence checked")
            .banks
            .extend(taken);
        Ok(())
    }

    /// Number of banks revoked from the pool so far.
    pub fn disabled_banks(&self) -> usize {
        self.pool.disabled_banks()
    }

    /// Permanently removes one physical bank from service, evacuating it
    /// first if a logical buffer owns it — the graceful-degradation path
    /// for injected bank failures. Pinned shortcut buffers are evacuated
    /// like any other owner: shortcut storing degrades to spilling rather
    /// than erroring.
    ///
    /// Revoking an already-disabled bank is a no-op reported as
    /// [`Revocation::WasFree`].
    ///
    /// # Errors
    ///
    /// [`BufferError::UnknownBank`] when the id is outside the pool.
    pub fn revoke_bank(&mut self, bank: BankId) -> Result<Revocation, BufferError> {
        if bank.0 >= self.config().bank_count {
            return Err(BufferError::UnknownBank(bank));
        }
        match self.pool.owner(bank) {
            None => {
                self.pool.disable(bank)?;
                Ok(Revocation::WasFree)
            }
            Some(owner) => {
                let bank_bytes = self.config().bank_bytes;
                let buf = self.buffer_mut(owner)?;
                let pos = buf
                    .banks
                    .iter()
                    .position(|&b| b == bank)
                    .ok_or(BufferError::UnknownBank(bank))?;
                // Conceptually the surviving data is compacted onto the
                // remaining banks; only the tail overflow is evicted.
                let last = buf.banks.len() - 1;
                buf.banks.swap(pos, last);
                buf.banks.pop();
                let new_cap = buf.banks.len() as u64 * bank_bytes;
                let evicted = buf.used_bytes.saturating_sub(new_cap);
                buf.used_bytes -= evicted;
                self.pool.give_back(&[bank]);
                self.pool.disable(bank)?;
                self.stats.spills += 1;
                Ok(Revocation::Evicted {
                    owner,
                    evicted_bytes: evicted,
                })
            }
        }
    }

    /// Verifies pool conservation plus buffer/pool ownership agreement.
    pub fn check_invariants(&self) -> bool {
        if !self.pool.check_conservation() {
            return false;
        }
        for buf in self.iter() {
            for &bank in &buf.banks {
                if self.pool.owner(bank) != Some(buf.id) {
                    return false;
                }
            }
            if buf.used_bytes > buf.banks.len() as u64 * self.config().bank_bytes {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> LogicalBuffers {
        LogicalBuffers::new(BankPoolConfig::new(8, 1024))
    }

    #[test]
    fn alloc_bytes_rounds_to_banks() {
        let mut b = mk();
        let id = b.alloc_bytes(BufferRole::Input, 2500).unwrap();
        assert_eq!(b.buffer(id).unwrap().banks().len(), 3);
        assert_eq!(b.capacity_bytes(id).unwrap(), 3072);
        assert_eq!(b.free_banks(), 5);
        assert!(b.check_invariants());
    }

    #[test]
    fn zero_alloc_is_rejected_but_zero_bytes_gets_one_bank() {
        let mut b = mk();
        assert_eq!(
            b.alloc(BufferRole::Input, 0),
            Err(BufferError::ZeroAllocation)
        );
        let id = b.alloc_bytes(BufferRole::Input, 0).unwrap();
        assert_eq!(b.buffer(id).unwrap().banks().len(), 1);
    }

    #[test]
    fn relabel_keeps_banks_and_contents() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Output, 2).unwrap();
        b.write(id, 1500).unwrap();
        b.set_contents(id, Some(FmRegion::full(3, 750))).unwrap();
        let banks_before = b.buffer(id).unwrap().banks().to_vec();
        b.relabel(id, BufferRole::Input).unwrap();
        let buf = b.buffer(id).unwrap();
        assert_eq!(buf.role(), BufferRole::Input);
        assert_eq!(buf.banks(), banks_before.as_slice());
        assert_eq!(buf.used_bytes(), 1500);
        assert_eq!(buf.contents(), Some(FmRegion::full(3, 750)));
        assert_eq!(b.stats().relabels, 1);
    }

    #[test]
    fn freed_handles_stay_invalid() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Input, 1).unwrap();
        b.free(id).unwrap();
        assert_eq!(b.free(id), Err(BufferError::UnknownBuffer(id)));
        assert_eq!(
            b.relabel(id, BufferRole::Output),
            Err(BufferError::UnknownBuffer(id))
        );
        // New allocations never reuse the freed handle.
        let id2 = b.alloc(BufferRole::Input, 1).unwrap();
        assert_ne!(id, id2);
    }

    #[test]
    fn pinned_buffers_cannot_be_freed() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Shortcut, 2).unwrap();
        b.pin(id).unwrap();
        assert_eq!(b.free(id), Err(BufferError::Pinned(id)));
        b.unpin(id).unwrap();
        b.free(id).unwrap();
        assert_eq!(b.free_banks(), 8);
        assert_eq!(b.stats().pins, 1);
    }

    #[test]
    fn spill_evicts_only_overflowing_bytes() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Shortcut, 3).unwrap();
        b.write(id, 2100).unwrap();
        // Capacity 3072 -> 2048 after one spill: 52 bytes evicted.
        let (_, evicted) = b.spill_bank(id).unwrap();
        assert_eq!(evicted, 52);
        assert_eq!(b.buffer(id).unwrap().used_bytes(), 2048);
        // Next spill evicts a full bank's worth.
        let (_, evicted) = b.spill_bank(id).unwrap();
        assert_eq!(evicted, 1024);
        // Last bank: remaining 1024 bytes.
        let (_, evicted) = b.spill_bank(id).unwrap();
        assert_eq!(evicted, 1024);
        assert_eq!(b.spill_bank(id), Err(BufferError::EmptyBuffer(id)));
        assert_eq!(b.free_banks(), 8);
        assert!(b.check_invariants());
        assert_eq!(b.stats().spills, 3);
    }

    #[test]
    fn grow_takes_from_pool() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Output, 2).unwrap();
        b.grow(id, 3).unwrap();
        assert_eq!(b.buffer(id).unwrap().banks().len(), 5);
        assert_eq!(b.free_banks(), 3);
        assert!(matches!(b.grow(id, 4), Err(BufferError::OutOfBanks { .. })));
        assert!(b.check_invariants());
    }

    #[test]
    fn absorb_merges_banks_and_occupancy() {
        let mut b = mk();
        let dst = b.alloc(BufferRole::Output, 2).unwrap();
        let src = b.alloc(BufferRole::Shortcut, 3).unwrap();
        b.write(dst, 1000).unwrap();
        b.write(src, 2000).unwrap();
        b.pin(src).unwrap();
        b.absorb(dst, src).unwrap();
        let buf = b.buffer(dst).unwrap();
        assert_eq!(buf.banks().len(), 5);
        assert_eq!(buf.used_bytes(), 3000);
        assert_eq!(b.buffer(src).unwrap_err(), BufferError::UnknownBuffer(src));
        assert_eq!(b.free_banks(), 3);
        assert!(b.check_invariants());
        // Self-merge is rejected.
        assert!(b.absorb(dst, dst).is_err());
    }

    #[test]
    fn write_clamps_to_capacity_and_counts_sram() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Output, 1).unwrap();
        b.write(id, 5000).unwrap();
        assert_eq!(b.buffer(id).unwrap().used_bytes(), 1024);
        b.read(id, 512).unwrap();
        assert_eq!(b.stats().sram_bytes_written, 5000);
        assert_eq!(b.stats().sram_bytes_read, 512);
    }

    #[test]
    fn spill_and_relabel_edge_cases_error_without_panicking() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Shortcut, 1).unwrap();
        b.pin(id).unwrap();
        // Spilling a pinned shortcut is the degradation mechanism — it
        // succeeds bank by bank until nothing is left.
        let (_, evicted) = b.spill_bank(id).unwrap();
        assert_eq!(evicted, 0);
        assert_eq!(b.spill_bank(id), Err(BufferError::EmptyBuffer(id)));
        // A pinned, empty buffer still cannot be freed until unpinned.
        assert_eq!(b.free(id), Err(BufferError::Pinned(id)));
        b.unpin(id).unwrap();
        b.free(id).unwrap();
        // Freed handles: every mutation is a typed error, never a panic.
        assert_eq!(b.spill_bank(id), Err(BufferError::UnknownBuffer(id)));
        assert_eq!(
            b.relabel(id, BufferRole::Input),
            Err(BufferError::UnknownBuffer(id))
        );
        assert_eq!(b.pin(id), Err(BufferError::UnknownBuffer(id)));
        assert!(b.check_invariants());
    }

    #[test]
    fn revoke_free_bank_disables_it() {
        let mut b = mk();
        assert_eq!(b.revoke_bank(BankId(3)), Ok(Revocation::WasFree));
        // Idempotent on an already-disabled bank.
        assert_eq!(b.revoke_bank(BankId(3)), Ok(Revocation::WasFree));
        assert_eq!(b.disabled_banks(), 1);
        assert_eq!(b.free_banks(), 7);
        assert_eq!(
            b.revoke_bank(BankId(99)),
            Err(BufferError::UnknownBank(BankId(99)))
        );
        assert!(b.check_invariants());
    }

    #[test]
    fn revoke_owned_bank_evacuates_pinned_shortcut() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Shortcut, 3).unwrap();
        b.pin(id).unwrap();
        b.write(id, 3000).unwrap();
        let bank = b.buffer(id).unwrap().banks()[1];
        let r = b.revoke_bank(bank).unwrap();
        assert_eq!(
            r,
            Revocation::Evicted {
                owner: id,
                evicted_bytes: 3000 - 2048,
            }
        );
        let buf = b.buffer(id).unwrap();
        assert!(buf.is_pinned());
        assert_eq!(buf.banks().len(), 2);
        assert_eq!(buf.used_bytes(), 2048);
        assert!(!buf.banks().contains(&bank));
        assert_eq!(b.disabled_banks(), 1);
        assert!(b.check_invariants());
        // The revoked bank never comes back: 8 banks - 3 owned... after
        // revocation 2 owned + 1 disabled leaves 5 allocatable.
        assert!(matches!(
            b.alloc(BufferRole::Output, 6),
            Err(BufferError::OutOfBanks { .. })
        ));
        assert!(b.alloc(BufferRole::Output, 5).is_ok());
    }

    #[test]
    fn revoke_last_bank_leaves_live_empty_buffer() {
        let mut b = mk();
        let id = b.alloc(BufferRole::Input, 1).unwrap();
        b.write(id, 100).unwrap();
        let bank = b.buffer(id).unwrap().banks()[0];
        let r = b.revoke_bank(bank).unwrap();
        assert_eq!(
            r,
            Revocation::Evicted {
                owner: id,
                evicted_bytes: 100,
            }
        );
        assert_eq!(b.buffer(id).unwrap().banks().len(), 0);
        assert_eq!(b.spill_bank(id), Err(BufferError::EmptyBuffer(id)));
        b.free(id).unwrap();
        assert!(b.check_invariants());
    }

    #[test]
    fn fm_region_accounting() {
        let full = FmRegion::full(2, 100);
        assert!(full.is_full());
        assert_eq!(full.missing_elems(), 0);
        let partial = FmRegion {
            producer: 2,
            total_elems: 100,
            resident_elems: 40,
        };
        assert!(!partial.is_full());
        assert_eq!(partial.missing_elems(), 60);
    }
}
