use serde::Serialize;

/// Operation counters accumulated by [`crate::LogicalBuffers`].
///
/// `relabels` is the count of O(1) role swaps — each one stands in for a
/// whole feature map that did *not* round-trip through DRAM. `spills` counts
/// capacity-pressure bank evictions. SRAM byte counters feed the energy
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct BufferStats {
    /// Logical buffers allocated.
    pub allocations: u64,
    /// Logical buffers freed.
    pub frees: u64,
    /// Role relabels (out–in swaps and shortcut conversions).
    pub relabels: u64,
    /// Pin operations (shortcut storing).
    pub pins: u64,
    /// Banks spilled under capacity pressure.
    pub spills: u64,
    /// Bytes written into on-chip buffers.
    pub sram_bytes_written: u64,
    /// Bytes read from on-chip buffers.
    pub sram_bytes_read: u64,
}

impl BufferStats {
    /// Total SRAM bytes moved (reads + writes), for the energy model.
    pub fn sram_bytes(&self) -> u64 {
        self.sram_bytes_read + self.sram_bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_bytes_sums_directions() {
        let s = BufferStats {
            sram_bytes_read: 10,
            sram_bytes_written: 32,
            ..BufferStats::default()
        };
        assert_eq!(s.sram_bytes(), 42);
    }
}
