//! Property tests for the bank pool and logical buffer invariants.
//!
//! The DESIGN.md invariant under test: *every bank is in exactly one state;
//! allocate/release round-trips restore the pool; relabelling never changes
//! bank sets or occupancy*, under arbitrary interleavings of operations.

use proptest::prelude::*;

use sm_buffer::{BankPoolConfig, BufferError, BufferRole, LogicalBufferId, LogicalBuffers};

/// One step of the randomized workload.
#[derive(Debug, Clone)]
enum Op {
    Alloc { role: u8, banks: usize },
    Free { victim: usize },
    Relabel { victim: usize, role: u8 },
    PinUnpin { victim: usize, pin: bool },
    Write { victim: usize, bytes: u64 },
    Spill { victim: usize },
    Grow { victim: usize, banks: usize },
}

fn role(tag: u8) -> BufferRole {
    match tag % 4 {
        0 => BufferRole::Input,
        1 => BufferRole::Output,
        2 => BufferRole::Shortcut,
        _ => BufferRole::Weight,
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1usize..5).prop_map(|(role, banks)| Op::Alloc { role, banks }),
        (0usize..64).prop_map(|victim| Op::Free { victim }),
        (0usize..64, 0u8..4).prop_map(|(victim, role)| Op::Relabel { victim, role }),
        (0usize..64, any::<bool>()).prop_map(|(victim, pin)| Op::PinUnpin { victim, pin }),
        (0usize..64, 0u64..5000).prop_map(|(victim, bytes)| Op::Write { victim, bytes }),
        (0usize..64).prop_map(|victim| Op::Spill { victim }),
        (0usize..64, 1usize..3).prop_map(|(victim, banks)| Op::Grow { victim, banks }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Conservation holds after every step of an arbitrary op sequence, and
    /// errors never corrupt state.
    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut bufs = LogicalBuffers::new(BankPoolConfig::new(16, 1024));
        let mut live: Vec<LogicalBufferId> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc { role: r, banks } => {
                    if let Ok(id) = bufs.alloc(role(r), banks) {
                        live.push(id);
                    }
                }
                Op::Free { victim } => {
                    if !live.is_empty() {
                        let idx = victim % live.len();
                        let id = live[idx];
                        match bufs.free(id) {
                            Ok(()) => { live.swap_remove(idx); }
                            Err(BufferError::Pinned(_)) => {}
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
                Op::Relabel { victim, role: r } => {
                    if !live.is_empty() {
                        let id = live[victim % live.len()];
                        let before = bufs.buffer(id).unwrap().clone();
                        bufs.relabel(id, role(r)).unwrap();
                        let after = bufs.buffer(id).unwrap();
                        // Relabel changes only the role.
                        prop_assert_eq!(before.banks(), after.banks());
                        prop_assert_eq!(before.used_bytes(), after.used_bytes());
                        prop_assert_eq!(before.contents(), after.contents());
                    }
                }
                Op::PinUnpin { victim, pin } => {
                    if !live.is_empty() {
                        let id = live[victim % live.len()];
                        if pin { bufs.pin(id).unwrap() } else { bufs.unpin(id).unwrap() }
                    }
                }
                Op::Write { victim, bytes } => {
                    if !live.is_empty() {
                        let id = live[victim % live.len()];
                        bufs.write(id, bytes).unwrap();
                        let buf = bufs.buffer(id).unwrap();
                        prop_assert!(buf.used_bytes() <= bufs.capacity_bytes(id).unwrap());
                    }
                }
                Op::Spill { victim } => {
                    if !live.is_empty() {
                        let idx = victim % live.len();
                        let id = live[idx];
                        let before_used = bufs.buffer(id).unwrap().used_bytes();
                        match bufs.spill_bank(id) {
                            Ok((_, evicted)) => {
                                let after = bufs.buffer(id).unwrap();
                                prop_assert_eq!(after.used_bytes() + evicted, before_used);
                            }
                            Err(BufferError::EmptyBuffer(_)) => {}
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
                Op::Grow { victim, banks } => {
                    if !live.is_empty() {
                        let id = live[victim % live.len()];
                        match bufs.grow(id, banks) {
                            Ok(()) | Err(BufferError::OutOfBanks { .. }) => {}
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
            }
            prop_assert!(bufs.check_invariants(), "invariant broken after {:?}", bufs.stats());
        }

        // Drain everything: pool must return to pristine.
        for id in live {
            bufs.unpin(id).unwrap();
            bufs.free(id).unwrap();
        }
        prop_assert_eq!(bufs.free_banks(), 16);
        prop_assert!(bufs.check_invariants());
    }

    /// Bank accounting: the sum of owned and free banks is constant.
    #[test]
    fn bank_totals_are_conserved(sizes in prop::collection::vec(1usize..6, 0..8)) {
        let mut bufs = LogicalBuffers::new(BankPoolConfig::new(24, 512));
        let mut ids = Vec::new();
        for s in sizes {
            if let Ok(id) = bufs.alloc(BufferRole::Input, s) {
                ids.push(id);
            }
        }
        let owned: usize = ids.iter().map(|&id| bufs.buffer(id).unwrap().banks().len()).sum();
        prop_assert_eq!(owned + bufs.free_banks(), 24);
    }

    /// alloc_bytes never allocates less capacity than requested.
    #[test]
    fn alloc_bytes_capacity_covers_request(bytes in 0u64..20_000) {
        let mut bufs = LogicalBuffers::new(BankPoolConfig::new(64, 1024));
        let id = bufs.alloc_bytes(BufferRole::Output, bytes).unwrap();
        prop_assert!(bufs.capacity_bytes(id).unwrap() >= bytes);
        // And never over-allocates by a full bank (minimum one bank).
        let cap = bufs.capacity_bytes(id).unwrap();
        prop_assert!(cap < bytes + 1024 || cap == 1024);
    }
}
