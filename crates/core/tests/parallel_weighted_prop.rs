//! Property tests for the deterministic fan-out primitives: whatever the
//! thread count and however adversarial the cost estimates, the weighted
//! (largest-cost-first) dispatcher, the FIFO dispatcher and a serial map
//! must all return byte-identical results in input order.

use proptest::prelude::*;

use sm_core::parallel::{par_map, par_map_weighted};

/// The mapped value carries the input and a derived payload so any
/// reordering or cross-worker mixup shows up as a byte-level mismatch.
fn cell(x: &u64) -> Vec<u8> {
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
    h.to_le_bytes()
        .iter()
        .chain(x.to_le_bytes().iter())
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted dispatch ≡ FIFO dispatch ≡ serial map at 1, 3 and 8
    /// threads, under adversarial costs: zeros, ties and ~10^9× skew are
    /// all generated, none may perturb output order or content.
    #[test]
    fn weighted_fifo_and_serial_maps_are_byte_identical(
        items in prop::collection::vec(0u64..1000, 0..40),
        costs in prop::collection::vec(
            prop_oneof![Just(0u64), Just(1), Just(u64::MAX / 4), 0u64..100],
            0..40
        ),
    ) {
        let serial: Vec<Vec<u8>> = items.iter().map(cell).collect();
        for threads in [1usize, 3, 8] {
            let fifo = par_map(&items, threads, cell);
            prop_assert_eq!(&serial, &fifo, "par_map diverged at {} threads", threads);
            // Cost is looked up by item value, so duplicated items share a
            // cost and an empty cost table falls back to a constant.
            let weighted = par_map_weighted(
                &items,
                threads,
                |x| {
                    let table = costs.len().max(1);
                    costs.get(*x as usize % table).copied().unwrap_or(7)
                },
                cell,
            );
            prop_assert_eq!(
                &serial,
                &weighted,
                "par_map_weighted diverged at {} threads",
                threads
            );
        }
    }

    /// Equal costs degrade gracefully: LPT with uniform weights is still a
    /// valid schedule and still order-preserving.
    #[test]
    fn uniform_costs_preserve_order(
        items in prop::collection::vec(0u64..1000, 1..60),
        threads in 1usize..9,
    ) {
        let serial: Vec<Vec<u8>> = items.iter().map(cell).collect();
        let weighted = par_map_weighted(&items, threads, |_| 42, cell);
        prop_assert_eq!(serial, weighted);
    }
}
