//! Edge-case integration tests for the Shortcut Mining simulator: unusual
//! graph shapes (self-adds, junction-as-output, terminal junctions) and
//! trace well-formedness across the zoo.

use sm_accel::{AccelConfig, BaselineAccelerator};
use sm_core::functional::verify_value_preservation;
use sm_core::{Policy, ShortcutMiner};
use sm_mem::TrafficClass;
use sm_model::{zoo, ConvSpec, Network, NetworkBuilder};
use sm_tensor::Shape4;

fn run(net: &Network, cfg: AccelConfig) -> sm_core::SmRun {
    ShortcutMiner::new(cfg, Policy::shortcut_mining()).simulate(net)
}

/// `add(x, x)`: the same producer feeds both junction operands.
fn self_add() -> Network {
    let mut b = NetworkBuilder::new("self_add", Shape4::new(1, 4, 8, 8));
    let x = b.input_id();
    let c1 = b.conv("c1", x, ConvSpec::relu(8, 3, 1, 1)).expect("c1");
    let doubled = b.eltwise_add("double", c1, c1, false).expect("add");
    b.conv("c2", doubled, ConvSpec::relu(8, 3, 1, 1))
        .expect("c2");
    b.finish().expect("builds")
}

/// The junction is the network's final layer.
fn junction_last() -> Network {
    let mut b = NetworkBuilder::new("junction_last", Shape4::new(1, 4, 8, 8));
    let x = b.input_id();
    let c1 = b.conv("c1", x, ConvSpec::relu(4, 3, 1, 1)).expect("c1");
    let c2 = b.conv("c2", c1, ConvSpec::linear(4, 3, 1, 1)).expect("c2");
    b.eltwise_add("out", c1, c2, true).expect("add");
    b.finish().expect("builds")
}

/// A shortcut whose source is the network input itself.
fn input_shortcut() -> Network {
    let mut b = NetworkBuilder::new("input_shortcut", Shape4::new(1, 4, 8, 8));
    let x = b.input_id();
    let c1 = b.conv("c1", x, ConvSpec::relu(4, 3, 1, 1)).expect("c1");
    let c2 = b.conv("c2", c1, ConvSpec::linear(4, 3, 1, 1)).expect("c2");
    let a = b.eltwise_add("add", x, c2, true).expect("add");
    b.conv("c3", a, ConvSpec::relu(4, 3, 1, 1)).expect("c3");
    b.finish().expect("builds")
}

#[test]
fn self_add_is_value_preserving_and_consistent() {
    let net = self_add();
    let cfg = AccelConfig::default();
    verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 3).unwrap();
    let sm = run(&net, cfg);
    sm.trace.check_well_formed().unwrap();
    let base = BaselineAccelerator::new(cfg)
        .with_fused_junctions()
        .simulate(&net);
    assert!(sm.stats.fm_traffic_bytes() <= base.fm_traffic_bytes());
}

#[test]
fn terminal_junction_writes_its_output() {
    let net = junction_last();
    let cfg = AccelConfig::default();
    verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 5).unwrap();
    let sm = run(&net, cfg);
    sm.trace.check_well_formed().unwrap();
    // The network output must fully reach DRAM.
    let out_bytes = net.layers().last().unwrap().out_elems() as u64 * 2;
    assert!(sm.stats.fm_traffic_bytes() >= out_bytes);
}

#[test]
fn network_input_can_be_a_shortcut_source() {
    let net = input_shortcut();
    let cfg = AccelConfig::default();
    verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 7).unwrap();
    let sm = run(&net, cfg);
    sm.trace.check_well_formed().unwrap();
    // The input is read from DRAM at least once (it is never resident
    // before the first layer), and the junction re-reads it (it cannot be
    // pinned before it was ever on chip).
    let retention = sm
        .retention
        .iter()
        .find(|r| r.producer == 0 && net.layers()[r.junction].name == "add")
        .expect("input shortcut recorded");
    assert_eq!(retention.resident_fraction, 0.0);
}

#[test]
fn traces_are_well_formed_across_the_zoo_and_capacities() {
    for cfg in [
        AccelConfig::default(),
        AccelConfig::default().with_fm_capacity(32 << 10),
        AccelConfig::default().with_fm_capacity(4 << 20),
    ] {
        for net in [
            zoo::resnet34(1),
            zoo::resnet50(2),
            zoo::squeezenet_v10_simple_bypass(1),
            zoo::googlenet(1),
            zoo::densenet121(1),
            zoo::mobilenet_v2(1),
            zoo::vgg16(1),
        ] {
            for policy in [
                Policy::shortcut_mining(),
                Policy::swap_only(),
                Policy::mining_only(),
                Policy::reuse_disabled(),
            ] {
                let sm = ShortcutMiner::new(cfg, policy).simulate(&net);
                sm.trace
                    .check_well_formed()
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", net.name(), policy.label()));
            }
        }
    }
}

#[test]
fn junction_take_over_skips_when_residual_has_other_consumers() {
    // c2 feeds both the add and a later conv: the add cannot clobber c2's
    // banks in place, and both consumers must still see correct data.
    let mut b = NetworkBuilder::new("shared_residual", Shape4::new(1, 4, 8, 8));
    let x = b.input_id();
    let c1 = b.conv("c1", x, ConvSpec::relu(4, 3, 1, 1)).expect("c1");
    let c2 = b.conv("c2", c1, ConvSpec::linear(4, 3, 1, 1)).expect("c2");
    let a = b.eltwise_add("add", c1, c2, true).expect("add");
    let c3 = b.conv("c3", a, ConvSpec::relu(4, 3, 1, 1)).expect("c3");
    let _a2 = b.eltwise_add("add2", c2, c3, true).expect("add2");
    let net = b.finish().expect("builds");

    let cfg = AccelConfig::default();
    verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 11).unwrap();
    let sm = run(&net, cfg);
    sm.trace.check_well_formed().unwrap();
}

#[test]
fn tiny_pool_still_produces_well_formed_traces_for_dense_graphs() {
    let cfg = AccelConfig::default().with_fm_capacity(8 << 10);
    for net in [
        zoo::densenet_tiny(4, 1),
        zoo::mobilenet_tiny(1),
        zoo::squeezenet_tiny(2),
    ] {
        let sm = run(&net, cfg);
        sm.trace
            .check_well_formed()
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 13)
            .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
    }
}

/// Concat whose first operand is consumed *again* after the junction: the
/// junction cannot take the operand banks over, so the fold must write the
/// residency back exactly once, release every operand buffer, and still
/// free operands whose last use this was.
fn concat_operand_outlives_junction() -> Network {
    let mut b = NetworkBuilder::new("concat_reuse", Shape4::new(1, 4, 8, 8));
    let x = b.input_id();
    let a = b.conv("a", x, ConvSpec::relu(4, 3, 1, 1)).expect("a");
    let br = b.conv("b", x, ConvSpec::relu(4, 3, 1, 1)).expect("b");
    let cat = b.concat("cat", &[a, br]).expect("cat");
    let c = b.conv("c", cat, ConvSpec::linear(4, 3, 1, 1)).expect("c");
    let j = b.eltwise_add("add", c, a, true).expect("add");
    b.conv("tail", j, ConvSpec::relu(4, 3, 1, 1)).expect("tail");
    b.finish().expect("builds")
}

#[test]
fn non_takeable_concat_is_value_preserving_and_leak_free() {
    let net = concat_operand_outlives_junction();
    let cfg = AccelConfig::default();
    verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 5).unwrap();
    let sm = run(&net, cfg);
    sm.trace.check_well_formed().unwrap();
    sm.stats.ledger.check_consistency().unwrap();

    // Layer schedule: input=0, a=1, b=2, cat=3, c=4, add=5, tail=6.
    // `b`'s only consumer is the concat; before the fold freed exhausted
    // operands its entry (and trace Free) leaked for the rest of the run.
    use sm_core::TraceEvent;
    let freed = |fm: usize| {
        sm.trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Free { fm: f } if *f == fm))
    };
    assert!(
        freed(2),
        "concat-exhausted operand must be freed at the fold"
    );
    assert!(
        freed(1),
        "shared operand must be freed after its add consumer"
    );
}

#[test]
fn non_takeable_concat_charges_each_write_back_once() {
    let net = concat_operand_outlives_junction();
    let sm = run(&net, AccelConfig::default());
    let cfg = AccelConfig::default();

    // Both operands (4x8x8 each) are fully resident going into the concat;
    // the conservative fold drops them with one write-back each. The concat
    // output *is* that concatenation, so no second "forced" store may be
    // charged on top (the historical double count).
    let operand_elems = 2 * (4 * 8 * 8) as u64;
    let cat = sm.stats.ledger.layer(3);
    assert_eq!(
        cat.class(TrafficClass::OfmWrite),
        operand_elems * cfg.elem_bytes,
        "concat fold must charge the residency write-back exactly once"
    );

    // `a` lost its residency at the fold, so the downstream add re-reads it
    // in full over the shortcut edge.
    let a_elems = (4 * 8 * 8) as u64;
    let add = sm.stats.ledger.layer(5);
    assert_eq!(
        add.class(TrafficClass::ShortcutRead),
        a_elems * cfg.elem_bytes,
        "dropped shortcut operand is refetched in full at its junction"
    );
}

#[test]
fn concat_junctions_feed_the_retention_ledger() {
    // The hand-built net: `a` (layer 1) reaches the concat (layer 3) over a
    // skip-1 shortcut edge while still fully resident.
    let net = concat_operand_outlives_junction();
    let sm = run(&net, AccelConfig::default());
    let rec = sm
        .retention
        .iter()
        .find(|r| r.junction == 3)
        .expect("concat junction must appear in the retention ledger");
    assert_eq!(rec.producer, 1);
    assert_eq!(rec.skip, 1);
    assert!((rec.resident_fraction - 1.0).abs() < 1e-12);

    // And a zoo net with concat junctions (fire modules) reports them too —
    // previously only add-style junctions were recorded.
    let sq = zoo::squeezenet_tiny(1);
    let sm = run(&sq, AccelConfig::default());
    use sm_model::LayerKind;
    assert!(
        sm.retention.iter().any(|r| {
            matches!(sq.layers()[r.junction].kind, LayerKind::ConcatChannels) && r.skip >= 1
        }),
        "fire-module concats must contribute retention records"
    );
}
