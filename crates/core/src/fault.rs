//! Deterministic fault injection for the Shortcut Mining simulator.
//!
//! A [`FaultPlan`] describes *what* can go wrong — banks failing, DRAM
//! transfers dropping, residency metadata corrupting — and a
//! [`FaultInjector`] turns the plan into a reproducible event stream: the
//! same plan and seed always produce the same failures in the same order,
//! so a faulty run's `RunStats` serializes byte-identically across
//! repetitions. The simulator responds by degrading gracefully (evacuating
//! revoked banks, retrying transfers with bounded backoff, re-fetching
//! corrupted residency from DRAM) rather than crashing; see
//! `ShortcutMiner::try_simulate`.

use serde::Serialize;

use sm_buffer::BankId;

/// Deterministic pseudo-random source (SplitMix64), kept private to this
/// module so the fault stream never depends on an external RNG's version.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 for a zero bound.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant at fault-injection scales.
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53-bit uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A seedable, serializable description of the faults to inject into one
/// simulation run. All rates are probabilities in `[0, 1]`; the default
/// plan injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Fraction of the pool's physical banks to revoke over the run.
    /// Failures are spread across layer boundaries (including before the
    /// first layer).
    pub bank_fail_fraction: f64,
    /// Per-attempt probability that a DRAM transfer fails and must retry.
    pub dram_fault_rate: f64,
    /// Retries allowed per transfer before the run aborts with
    /// `SimError::RetryExhausted`.
    pub max_retries: u32,
    /// Stall cycles charged for the first retry of a transfer; each further
    /// retry backs off linearly (second retry stalls twice this, and so on).
    pub retry_stall_cycles: u64,
    /// Per-layer probability that one live feature map's residency
    /// metadata is corrupted (the DRAM-backed part of its on-chip prefix
    /// is invalidated and later re-fetched).
    pub corruption_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            bank_fail_fraction: 0.0,
            dram_fault_rate: 0.0,
            max_retries: 3,
            retry_stall_cycles: 64,
            corruption_rate: 0.0,
        }
    }
}

impl FaultPlan {
    /// An inject-nothing plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the fraction of pool banks that fail over the run.
    pub fn with_bank_failures(mut self, fraction: f64) -> Self {
        self.bank_fail_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt DRAM failure probability.
    pub fn with_dram_faults(mut self, rate: f64) -> Self {
        self.dram_fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the retry budget and first-retry stall.
    pub fn with_retry_budget(mut self, max_retries: u32, stall_cycles: u64) -> Self {
        self.max_retries = max_retries;
        self.retry_stall_cycles = stall_cycles;
        self
    }

    /// Sets the per-layer residency-corruption probability.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.bank_fail_fraction > 0.0 || self.dram_fault_rate > 0.0 || self.corruption_rate > 0.0
    }
}

/// The per-run fault event source instantiated from a [`FaultPlan`].
///
/// Construction fixes the bank-failure schedule; the remaining draws
/// (transfer failures, corruption picks) are consumed in simulation order,
/// which is itself deterministic, so the whole stream reproduces exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
    dram_fault_rate: f64,
    max_retries: u32,
    retry_stall_cycles: u64,
    corruption_rate: f64,
    /// `(layer, bank)` revocations, sorted by layer; consumed front to back.
    schedule: Vec<(usize, BankId)>,
    next_failure: usize,
}

impl FaultInjector {
    /// Builds the injector for a run over `layer_count` schedulable layers
    /// (schedule indices `1..=layer_count`) and a pool of `bank_count`
    /// banks.
    pub fn new(plan: &FaultPlan, bank_count: usize, layer_count: usize) -> Self {
        let mut rng = SplitMix64::new(plan.seed);
        let to_fail =
            ((plan.bank_fail_fraction * bank_count as f64).round() as usize).min(bank_count);
        // Choose distinct victim banks, then spread them over the layer
        // boundaries (layer 1 = before any work happens).
        let mut victims: Vec<usize> = (0..bank_count).collect();
        for i in 0..to_fail {
            let j = i + rng.below((bank_count - i) as u64) as usize;
            victims.swap(i, j);
        }
        let mut schedule: Vec<(usize, BankId)> = victims[..to_fail]
            .iter()
            .map(|&bank| {
                let layer = 1 + rng.below(layer_count.max(1) as u64) as usize;
                (layer, BankId(bank))
            })
            .collect();
        schedule.sort();
        FaultInjector {
            rng,
            dram_fault_rate: plan.dram_fault_rate,
            max_retries: plan.max_retries,
            retry_stall_cycles: plan.retry_stall_cycles,
            corruption_rate: plan.corruption_rate,
            schedule,
            next_failure: 0,
        }
    }

    /// Banks scheduled to fail at (or before) `layer` that have not been
    /// reported yet. Each bank is reported exactly once.
    pub fn banks_failing_at(&mut self, layer: usize) -> Vec<BankId> {
        let mut out = Vec::new();
        while self.next_failure < self.schedule.len() && self.schedule[self.next_failure].0 <= layer
        {
            out.push(self.schedule[self.next_failure].1);
            self.next_failure += 1;
        }
        out
    }

    /// Total banks the plan will fail over the whole run.
    pub fn planned_bank_failures(&self) -> usize {
        self.schedule.len()
    }

    /// Plays out one DRAM transfer: the number of failed attempts before
    /// success (`Ok`) or `Err(attempts)` when the retry budget is spent.
    /// Also returns the stall cycles accumulated by linear backoff.
    pub fn transfer_attempts(&mut self) -> Result<(u32, u64), (u32, u64)> {
        let mut failed = 0u32;
        let mut stall = 0u64;
        while self.rng.chance(self.dram_fault_rate) {
            failed += 1;
            stall = stall.saturating_add(self.retry_stall_cycles.saturating_mul(failed as u64));
            if failed > self.max_retries {
                return Err((failed, stall));
            }
        }
        Ok((failed, stall))
    }

    /// Whether this layer boundary corrupts a feature map's residency.
    pub fn corruption_strikes(&mut self) -> bool {
        self.rng.chance(self.corruption_rate)
    }

    /// Picks an index below `len` for corruption targeting.
    pub fn pick(&mut self, len: usize) -> usize {
        self.rng.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42)
            .with_bank_failures(0.5)
            .with_dram_faults(0.3)
            .with_corruption(0.2)
    }

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = FaultInjector::new(&plan(), 16, 10);
        let mut b = FaultInjector::new(&plan(), 16, 10);
        for layer in 1..=10 {
            assert_eq!(a.banks_failing_at(layer), b.banks_failing_at(layer));
            assert_eq!(a.corruption_strikes(), b.corruption_strikes());
        }
        for _ in 0..100 {
            assert_eq!(a.transfer_attempts(), b.transfer_attempts());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(&plan(), 64, 10);
        let other = FaultPlan { seed: 43, ..plan() };
        let mut b = FaultInjector::new(&other, 64, 10);
        let sa: Vec<_> = (1..=10).flat_map(|l| a.banks_failing_at(l)).collect();
        let sb: Vec<_> = (1..=10).flat_map(|l| b.banks_failing_at(l)).collect();
        assert_eq!(sa.len(), sb.len(), "same failure count either way");
        assert_ne!(sa, sb, "schedules should differ across seeds");
    }

    #[test]
    fn bank_failures_are_distinct_and_match_fraction() {
        let mut inj = FaultInjector::new(&plan(), 20, 5);
        assert_eq!(inj.planned_bank_failures(), 10);
        let mut banks: Vec<_> = (1..=5).flat_map(|l| inj.banks_failing_at(l)).collect();
        assert_eq!(banks.len(), 10);
        banks.sort();
        banks.dedup();
        assert_eq!(banks.len(), 10, "no bank fails twice");
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let quiet = FaultPlan::new(7);
        assert!(!quiet.is_active());
        let mut inj = FaultInjector::new(&quiet, 32, 100);
        assert_eq!(inj.planned_bank_failures(), 0);
        assert!(!inj.corruption_strikes());
        assert_eq!(inj.transfer_attempts(), Ok((0, 0)));
    }

    #[test]
    fn retry_budget_is_enforced() {
        let hostile = FaultPlan::new(1)
            .with_dram_faults(1.0)
            .with_retry_budget(2, 10);
        let mut inj = FaultInjector::new(&hostile, 8, 4);
        // Rate 1.0 always fails: budget of 2 retries means 3 failed
        // attempts, stalls 10 + 20 + 30.
        assert_eq!(inj.transfer_attempts(), Err((3, 60)));
    }
}
