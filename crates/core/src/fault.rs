//! Deterministic fault injection for the Shortcut Mining simulator.
//!
//! A [`FaultPlan`] describes *what* can go wrong — banks failing, DRAM
//! transfers dropping, residency metadata corrupting, weight-SRAM words and
//! PE MAC lanes being struck — and a [`FaultInjector`] turns the plan into a
//! reproducible event stream: the same plan and seed always produce the same
//! failures in the same order, so a faulty run's `RunStats` serializes
//! byte-identically across repetitions. The simulator responds by degrading
//! gracefully (evacuating revoked banks, retrying transfers with bounded
//! backoff, re-fetching corrupted residency from DRAM, repairing protected
//! site strikes per their [`Protection`] policy) rather than crashing; see
//! `ShortcutMiner::try_simulate`.
//!
//! Site faults (weight SRAM, PE array, BCU mapping table) draw from a
//! *dedicated* PRNG stream with a fixed draw count per layer, so at a fixed
//! seed the set of struck layers at a lower rate is a subset of the set at
//! any higher rate — the degradation metrics are monotone in the fault rate
//! by construction, and enabling site faults never perturbs the bank/DRAM
//! fault stream.
//!
//! Two control-path extensions ride on the same stream:
//!
//! * **BCU mapping-table upsets** strike the table entry that routes the
//!   current layer's output logical buffer. Under [`Protection::None`] the
//!   misroute is silent and only the value replay catches it (naming the
//!   buffer and the layer distance the corruption travelled); `Parity`
//!   rebuilds the entry from a shadow copy at a stall; `Ecc` scrubs the
//!   table each layer at the usual check tax.
//! * **Multi-bit strike widths** ([`StrikeWidth`]) model upsets wider than
//!   SECDED can correct: on ECC-protected *storage* (weight SRAM, BCU
//!   table) a single-bit strike is corrected (CE), a double-bit strike is
//!   detected but uncorrectable (DUE) and handed to the recovery policy
//!   ([`RecoveryPolicy`]), and a 3+-bit strike can alias to a valid
//!   codeword and slip through silently. The residue-checked PE array is
//!   unaffected by widths.

use serde::{Deserialize, Serialize};

use sm_buffer::BankId;

/// Seed salt separating the site-fault stream from the bank/DRAM stream.
const SITE_STREAM_SALT: u64 = 0x517E_FA17_0DD5_EED5;

/// Seed salt separating the scheduler-state stream from both the bank/DRAM
/// stream and the site stream, so enabling scheduler faults leaves every
/// pre-existing fault class byte-identical.
const SCHED_STREAM_SALT: u64 = 0x5C4E_DD1E_57A7_E5ED;

/// Deterministic pseudo-random source (SplitMix64), kept private to this
/// module so the fault stream never depends on an external RNG's version.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 for a zero bound.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant at fault-injection scales.
            self.next_u64() % bound
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    ///
    /// Consumes no draw at the degenerate rates so an inactive fault class
    /// never perturbs the stream of an active one.
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// 53-bit uniform value in `[0, 1)`; always consumes exactly one draw.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hardware protection policy applied to one fault site (weight SRAM or the
/// PE array).
///
/// The three policies span the cost/coverage trade-off measured by the
/// degradation studies:
///
/// * [`Protection::None`] — a strike silently corrupts the layer's output;
///   nothing is charged, and only the value-level functional checker
///   (`verify_value_preservation_with`) can catch it.
/// * [`Protection::Parity`] — a strike is *detected*; the simulator repairs
///   it by refetching the layer's weights from DRAM (charged as
///   `TrafficClass::Retry` traffic plus stall cycles) or recomputing the
///   struck lane's output share. Values stay correct.
/// * [`Protection::Ecc`] — a strike is *corrected in place*; no extra
///   traffic, but every protected access pays a per-byte / per-MAC
///   check tax in cycles (`sm_accel::cycles`) and energy
///   (`sm_mem::EnergyModel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Protection {
    /// Unprotected: strikes corrupt values silently.
    #[default]
    None,
    /// Detect-only codes: strikes are repaired by refetch/recompute.
    Parity,
    /// Correcting codes: strikes are absorbed at a per-access tax.
    Ecc,
}

/// How many bits one site strike flips.
///
/// Only ECC-protected *storage* sites (weight SRAM, BCU mapping table)
/// distinguish widths — SECDED corrects one bit, detects two, and can be
/// aliased by three or more. Parity stays detect-only at any width, `None`
/// stays silent at any width, and the PE array's residue check is
/// width-agnostic, so everywhere else the width is informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StrikeWidth {
    /// One bit flipped: SECDED corrects it in place (CE).
    Single,
    /// Two bits flipped: SECDED detects but cannot correct (DUE).
    Double,
    /// Three or more bits flipped: may alias to a valid codeword and pass
    /// SECDED silently.
    TriplePlus,
}

/// What the simulator does when an ECC-protected site reports a
/// detected-but-uncorrectable (DUE) strike.
///
/// The ladder trades availability for cost: `Abort` surfaces the DUE as a
/// typed error, `RefetchTile` conservatively re-streams the layer's source
/// data from DRAM, and `RecomputeLayer` re-executes the layer from its
/// still-resident inputs — paying compute but touching DRAM only for
/// operand bytes that were not resident, which is exactly the traffic the
/// shortcut-mining residency scheme avoids. Both recovery policies are
/// bounded by the plan's retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Fail the run with `SimError::Unrecoverable`.
    #[default]
    Abort,
    /// Re-DMA the layer's source data, charged as `TrafficClass::Retry`
    /// plus a stall.
    RefetchTile,
    /// Re-execute the producing layer from resident inputs, charging
    /// compute cycles and only the non-resident operand bytes as Retry
    /// traffic.
    RecomputeLayer,
    /// Roll back to the last layer-boundary checkpoint of scheduler
    /// metadata and replay forward. The checkpoint preserves the retention
    /// table, bank labels and pin set, so the replay serves every operand
    /// that was resident at the boundary from chip and re-streams only the
    /// layer's plain input bytes — at most what `RecomputeLayer` moves,
    /// and strictly less wherever shortcut mining kept operands resident.
    /// Falls back to `RecomputeLayer` when no checkpoint exists yet (a
    /// strike on the very first layer).
    Checkpoint,
}

/// Per-run allowances for the recovery tiers, enabling graceful budget
/// escalation instead of a cliff: when a tier's allowance is spent, the
/// next DUE escalates one rung along
/// `RefetchTile → RecomputeLayer → Checkpoint → Abort`. Every field
/// defaults to `None` (unlimited), which reproduces the pre-budget
/// behavior exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryBudget {
    /// Tile refetches allowed per run (`None` = unlimited).
    #[serde(default)]
    pub refetches: Option<u32>,
    /// Layer recomputes allowed per run (`None` = unlimited).
    #[serde(default)]
    pub recomputes: Option<u32>,
    /// Checkpoint rollbacks allowed per run (`None` = unlimited).
    #[serde(default)]
    pub rollbacks: Option<u32>,
}

/// One layer's site-fault outcome, drawn from the dedicated site stream.
///
/// The raw `weight_word` / `pe_lane` / `bcu_entry` selectors are full-width
/// draws; the simulator reduces them modulo the layer's word count / lane
/// count / table size so the draw count stays independent of layer
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteFaultDraw {
    /// Whether a weight-SRAM word is struck while this layer's weights are
    /// live.
    pub weight_struck: bool,
    /// Raw selector for the struck weight word.
    pub weight_word: u64,
    /// Bit width of the weight-SRAM strike.
    pub weight_width: StrikeWidth,
    /// Whether a PE MAC lane is struck during this layer's compute.
    pub pe_struck: bool,
    /// Raw selector for the struck lane.
    pub pe_lane: u64,
    /// Whether a BCU mapping-table entry is struck while this layer holds
    /// an output logical buffer (layers that allocate no output are
    /// immune).
    pub bcu_struck: bool,
    /// Raw selector for the struck table entry.
    pub bcu_entry: u64,
    /// Bit width of the BCU table strike.
    pub bcu_width: StrikeWidth,
}

/// One layer boundary's scheduler-state strike outcome, drawn from the
/// dedicated scheduler stream.
///
/// The raw `target` / `index` selectors are full-width draws; the simulator
/// reduces `target` modulo the number of scheduler structures (retention
/// table, pin set, spill queue) and `index` modulo the struck structure's
/// entry count, so the draw count stays independent of run geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerFaultDraw {
    /// Whether scheduler state is struck at this layer boundary.
    pub struck: bool,
    /// Raw selector for the struck structure.
    pub target: u64,
    /// Raw selector for the struck entry within that structure.
    pub index: u64,
    /// Bit width of the strike.
    pub width: StrikeWidth,
}

/// A seedable, serializable description of the faults to inject into one
/// simulation run. All rates are probabilities in `[0, 1]`; the default
/// plan injects nothing.
///
/// The site-fault fields (`weight_*`, `pe_*`) and the control-path fields
/// (`bcu_*`, the multi-bit widths, `recovery`) were added after the first
/// stored plans shipped, so they deserialize with their defaults when
/// absent — pre-existing JSON plans keep loading unchanged. The multi-bit
/// and recovery fields serialize under longer wire names
/// (`multi_bit_double_rate`, `multi_bit_triple_rate`, `recovery_policy`)
/// via `#[serde(rename)]` so the JSON stays self-describing while the Rust
/// fields stay terse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Fraction of the pool's physical banks to revoke over the run.
    /// Failures are spread across layer boundaries (including before the
    /// first layer).
    pub bank_fail_fraction: f64,
    /// Per-attempt probability that a DRAM transfer fails and must retry.
    pub dram_fault_rate: f64,
    /// Retries allowed per transfer before the run aborts with
    /// `SimError::RetryExhausted`.
    pub max_retries: u32,
    /// Stall cycles charged for the first retry of a transfer; each further
    /// retry backs off linearly (second retry stalls twice this, and so on).
    pub retry_stall_cycles: u64,
    /// Per-layer probability that one live feature map's residency
    /// metadata is corrupted (the DRAM-backed part of its on-chip prefix
    /// is invalidated and later re-fetched).
    pub corruption_rate: f64,
    /// Per-layer probability that a weight-SRAM word is struck while the
    /// layer's weights are live (layers that read no weights are immune).
    #[serde(default)]
    pub weight_fault_rate: f64,
    /// Protection policy on the weight SRAM.
    #[serde(default)]
    pub weight_protection: Protection,
    /// Per-layer probability that one PE MAC lane is struck during the
    /// layer's compute (layers with no arithmetic are immune).
    #[serde(default)]
    pub pe_fault_rate: f64,
    /// Protection policy on the PE array.
    #[serde(default)]
    pub pe_protection: Protection,
    /// Per-layer probability that a BCU mapping-table entry is struck
    /// while the layer holds an output logical buffer (layers that
    /// allocate no output are immune).
    #[serde(default)]
    pub bcu_fault_rate: f64,
    /// Protection policy on the BCU mapping table.
    #[serde(default)]
    pub bcu_protection: Protection,
    /// Probability that a storage-site strike flips exactly two bits
    /// (SECDED detects but cannot correct).
    #[serde(default, rename = "multi_bit_double_rate")]
    pub mbu_double_rate: f64,
    /// Probability that a storage-site strike flips three or more bits
    /// (may alias past SECDED silently). The remaining mass is single-bit.
    #[serde(default, rename = "multi_bit_triple_rate")]
    pub mbu_triple_rate: f64,
    /// What to do when an ECC-protected site reports a DUE.
    #[serde(default, rename = "recovery_policy")]
    pub recovery: RecoveryPolicy,
    /// Per-layer probability that the scheduler's own state — a retention
    /// record, a pin label, or a spill-queue entry — is struck at the
    /// layer boundary.
    #[serde(default)]
    pub scheduler_fault_rate: f64,
    /// Protection policy on the scheduler-state storage.
    #[serde(default)]
    pub scheduler_protection: Protection,
    /// Per-run recovery-tier allowances; exhaustion escalates along the
    /// ladder.
    #[serde(default, rename = "recovery_budget")]
    pub budget: RecoveryBudget,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            bank_fail_fraction: 0.0,
            dram_fault_rate: 0.0,
            max_retries: 3,
            retry_stall_cycles: 64,
            corruption_rate: 0.0,
            weight_fault_rate: 0.0,
            weight_protection: Protection::None,
            pe_fault_rate: 0.0,
            pe_protection: Protection::None,
            bcu_fault_rate: 0.0,
            bcu_protection: Protection::None,
            mbu_double_rate: 0.0,
            mbu_triple_rate: 0.0,
            recovery: RecoveryPolicy::Abort,
            scheduler_fault_rate: 0.0,
            scheduler_protection: Protection::None,
            budget: RecoveryBudget::default(),
        }
    }
}

impl FaultPlan {
    /// An inject-nothing plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the fraction of pool banks that fail over the run.
    pub fn with_bank_failures(mut self, fraction: f64) -> Self {
        self.bank_fail_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-attempt DRAM failure probability.
    pub fn with_dram_faults(mut self, rate: f64) -> Self {
        self.dram_fault_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the retry budget and first-retry stall.
    pub fn with_retry_budget(mut self, max_retries: u32, stall_cycles: u64) -> Self {
        self.max_retries = max_retries;
        self.retry_stall_cycles = stall_cycles;
        self
    }

    /// Sets the per-layer residency-corruption probability.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-layer weight-SRAM strike probability and the protection
    /// policy guarding it.
    pub fn with_weight_faults(mut self, rate: f64, protection: Protection) -> Self {
        self.weight_fault_rate = rate.clamp(0.0, 1.0);
        self.weight_protection = protection;
        self
    }

    /// Sets the per-layer PE-lane strike probability and the protection
    /// policy guarding it.
    pub fn with_pe_faults(mut self, rate: f64, protection: Protection) -> Self {
        self.pe_fault_rate = rate.clamp(0.0, 1.0);
        self.pe_protection = protection;
        self
    }

    /// Sets the per-layer BCU mapping-table strike probability and the
    /// protection policy guarding the table.
    pub fn with_bcu_faults(mut self, rate: f64, protection: Protection) -> Self {
        self.bcu_fault_rate = rate.clamp(0.0, 1.0);
        self.bcu_protection = protection;
        self
    }

    /// Sets the multi-bit strike width distribution: `double` is the
    /// probability a strike flips exactly two bits, `triple_plus` that it
    /// flips three or more. The pair is clamped so the two together never
    /// exceed probability one; the remainder is single-bit.
    pub fn with_multi_bit(mut self, double: f64, triple_plus: f64) -> Self {
        self.mbu_triple_rate = triple_plus.clamp(0.0, 1.0);
        self.mbu_double_rate = double.clamp(0.0, 1.0 - self.mbu_triple_rate);
        self
    }

    /// Sets the DUE recovery policy.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Sets the per-layer scheduler-state strike probability and the
    /// protection policy guarding that storage.
    pub fn with_scheduler_faults(mut self, rate: f64, protection: Protection) -> Self {
        self.scheduler_fault_rate = rate.clamp(0.0, 1.0);
        self.scheduler_protection = protection;
        self
    }

    /// Sets the per-run recovery-tier budgets.
    pub fn with_recovery_budget(mut self, budget: RecoveryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Whether the plan can inject anything at all. ECC protection alone
    /// also activates the plan: its per-access tax must be charged even
    /// when no strike lands. (Scheduler-state ECC carries no tax — the
    /// metadata is a few hundred bytes and its scrub hides in the layer
    /// turnaround — but it still activates the plan so layer-boundary
    /// checkpoints are taken.)
    pub fn is_active(&self) -> bool {
        self.bank_fail_fraction > 0.0
            || self.dram_fault_rate > 0.0
            || self.corruption_rate > 0.0
            || self.weight_fault_rate > 0.0
            || self.pe_fault_rate > 0.0
            || self.bcu_fault_rate > 0.0
            || self.scheduler_fault_rate > 0.0
            || self.weight_protection == Protection::Ecc
            || self.pe_protection == Protection::Ecc
            || self.bcu_protection == Protection::Ecc
            || self.scheduler_protection == Protection::Ecc
    }
}

/// The per-run fault event source instantiated from a [`FaultPlan`].
///
/// Construction fixes the bank-failure schedule; the remaining draws
/// (transfer failures, corruption picks) are consumed in simulation order,
/// which is itself deterministic, so the whole stream reproduces exactly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
    /// Dedicated stream for weight-SRAM / PE-array strikes; fixed draw
    /// count per layer keeps strike sets monotone in the rates.
    site_rng: SplitMix64,
    /// Dedicated stream for scheduler-state strikes; same fixed-draw
    /// discipline, so all prior streams stay byte-identical.
    sched_rng: SplitMix64,
    dram_fault_rate: f64,
    max_retries: u32,
    retry_stall_cycles: u64,
    corruption_rate: f64,
    weight_fault_rate: f64,
    weight_protection: Protection,
    pe_fault_rate: f64,
    pe_protection: Protection,
    bcu_fault_rate: f64,
    bcu_protection: Protection,
    mbu_double_rate: f64,
    mbu_triple_rate: f64,
    recovery: RecoveryPolicy,
    scheduler_fault_rate: f64,
    scheduler_protection: Protection,
    budget: RecoveryBudget,
    /// `(layer, bank)` revocations, sorted by layer; consumed front to back.
    schedule: Vec<(usize, BankId)>,
    next_failure: usize,
}

impl FaultInjector {
    /// Builds the injector for a run over `layer_count` schedulable layers
    /// (schedule indices `1..=layer_count`) and a pool of `bank_count`
    /// banks.
    pub fn new(plan: &FaultPlan, bank_count: usize, layer_count: usize) -> Self {
        let mut rng = SplitMix64::new(plan.seed);
        let to_fail =
            ((plan.bank_fail_fraction * bank_count as f64).round() as usize).min(bank_count);
        // Choose distinct victim banks, then spread them over the layer
        // boundaries (layer 1 = before any work happens).
        let mut victims: Vec<usize> = (0..bank_count).collect();
        for i in 0..to_fail {
            let j = i + rng.below((bank_count - i) as u64) as usize;
            victims.swap(i, j);
        }
        let mut schedule: Vec<(usize, BankId)> = victims[..to_fail]
            .iter()
            .map(|&bank| {
                let layer = 1 + rng.below(layer_count.max(1) as u64) as usize;
                (layer, BankId(bank))
            })
            .collect();
        schedule.sort();
        FaultInjector {
            rng,
            site_rng: SplitMix64::new(plan.seed ^ SITE_STREAM_SALT),
            sched_rng: SplitMix64::new(plan.seed ^ SCHED_STREAM_SALT),
            dram_fault_rate: plan.dram_fault_rate,
            max_retries: plan.max_retries,
            retry_stall_cycles: plan.retry_stall_cycles,
            corruption_rate: plan.corruption_rate,
            weight_fault_rate: plan.weight_fault_rate,
            weight_protection: plan.weight_protection,
            pe_fault_rate: plan.pe_fault_rate,
            pe_protection: plan.pe_protection,
            bcu_fault_rate: plan.bcu_fault_rate,
            bcu_protection: plan.bcu_protection,
            mbu_double_rate: plan.mbu_double_rate,
            mbu_triple_rate: plan.mbu_triple_rate,
            recovery: plan.recovery,
            scheduler_fault_rate: plan.scheduler_fault_rate,
            scheduler_protection: plan.scheduler_protection,
            budget: plan.budget,
            schedule,
            next_failure: 0,
        }
    }

    /// Banks scheduled to fail at (or before) `layer` that have not been
    /// reported yet. Each bank is reported exactly once.
    pub fn banks_failing_at(&mut self, layer: usize) -> Vec<BankId> {
        let mut out = Vec::new();
        while self.next_failure < self.schedule.len() && self.schedule[self.next_failure].0 <= layer
        {
            out.push(self.schedule[self.next_failure].1);
            self.next_failure += 1;
        }
        out
    }

    /// Total banks the plan will fail over the whole run.
    pub fn planned_bank_failures(&self) -> usize {
        self.schedule.len()
    }

    /// Plays out one DRAM transfer: the number of failed attempts before
    /// success (`Ok`) or `Err(attempts)` when the retry budget is spent.
    /// Also returns the stall cycles accumulated by linear backoff.
    pub fn transfer_attempts(&mut self) -> Result<(u32, u64), (u32, u64)> {
        let mut failed = 0u32;
        let mut stall = 0u64;
        while self.rng.chance(self.dram_fault_rate) {
            failed += 1;
            stall = stall.saturating_add(self.retry_stall_cycles.saturating_mul(failed as u64));
            if failed > self.max_retries {
                return Err((failed, stall));
            }
        }
        Ok((failed, stall))
    }

    /// Whether this layer boundary corrupts a feature map's residency.
    pub fn corruption_strikes(&mut self) -> bool {
        self.rng.chance(self.corruption_rate)
    }

    /// Picks an index below `len` for corruption targeting.
    pub fn pick(&mut self, len: usize) -> usize {
        self.rng.below(len as u64) as usize
    }

    /// Maps one unit draw to a strike width. `TriplePlus` occupies the low
    /// end of the unit interval and `Double` the band above it, so at a
    /// fixed seed raising `mbu_triple_rate` only ever widens strikes —
    /// silent-aliasing counts are monotone in the 3+-bit rate.
    fn width_from_unit(&self, w: f64) -> StrikeWidth {
        if w < self.mbu_triple_rate {
            StrikeWidth::TriplePlus
        } else if w < self.mbu_triple_rate + self.mbu_double_rate {
            StrikeWidth::Double
        } else {
            StrikeWidth::Single
        }
    }

    /// Draws one layer's weight-SRAM, PE-array, and BCU-table strike
    /// outcomes from the dedicated site stream.
    ///
    /// Exactly eight draws are consumed regardless of the rates or
    /// outcomes — in order: weight strike, weight word, weight width, PE
    /// strike, PE lane, BCU strike, BCU entry, BCU width — so at a fixed
    /// seed the struck layers at rate `p₁` are a subset of the struck
    /// layers at any rate `p₂ ≥ p₁`: Retry traffic and repair work are
    /// monotone in the fault rate by construction.
    pub fn layer_site_faults(&mut self) -> SiteFaultDraw {
        let weight_unit = self.site_rng.unit();
        let weight_word = self.site_rng.next_u64();
        let weight_width_unit = self.site_rng.unit();
        let pe_unit = self.site_rng.unit();
        let pe_lane = self.site_rng.next_u64();
        let bcu_unit = self.site_rng.unit();
        let bcu_entry = self.site_rng.next_u64();
        let bcu_width_unit = self.site_rng.unit();
        let weight_width = self.width_from_unit(weight_width_unit);
        let bcu_width = self.width_from_unit(bcu_width_unit);
        SiteFaultDraw {
            weight_struck: weight_unit < self.weight_fault_rate,
            weight_word,
            weight_width,
            pe_struck: pe_unit < self.pe_fault_rate,
            pe_lane,
            bcu_struck: bcu_unit < self.bcu_fault_rate,
            bcu_entry,
            bcu_width,
        }
    }

    /// Draws one layer boundary's scheduler-state strike outcome from the
    /// dedicated scheduler stream.
    ///
    /// Exactly four draws are consumed regardless of the rate or outcome —
    /// in order: strike, target structure, entry index, width — so at a
    /// fixed seed the struck boundaries at a lower rate are a subset of
    /// those at any higher rate, and enabling scheduler faults never
    /// perturbs the bank/DRAM or site streams.
    pub fn layer_scheduler_faults(&mut self) -> SchedulerFaultDraw {
        let unit = self.sched_rng.unit();
        let target = self.sched_rng.next_u64();
        let index = self.sched_rng.next_u64();
        let width_unit = self.sched_rng.unit();
        SchedulerFaultDraw {
            struck: unit < self.scheduler_fault_rate,
            target,
            index,
            width: self.width_from_unit(width_unit),
        }
    }

    /// Protection policy on the scheduler-state storage.
    pub fn scheduler_protection(&self) -> Protection {
        self.scheduler_protection
    }

    /// The per-run recovery-tier budgets.
    pub fn recovery_budget(&self) -> RecoveryBudget {
        self.budget
    }

    /// Protection policy on the weight SRAM.
    pub fn weight_protection(&self) -> Protection {
        self.weight_protection
    }

    /// Protection policy on the PE array.
    pub fn pe_protection(&self) -> Protection {
        self.pe_protection
    }

    /// Protection policy on the BCU mapping table.
    pub fn bcu_protection(&self) -> Protection {
        self.bcu_protection
    }

    /// The configured DUE recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Retries allowed per transfer (shared with DUE recoveries per
    /// layer) before the run aborts.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Stall cycles charged per parity-detected strike (shared with the
    /// DRAM retry backoff's first step).
    pub fn retry_stall_cycles(&self) -> u64 {
        self.retry_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(42)
            .with_bank_failures(0.5)
            .with_dram_faults(0.3)
            .with_corruption(0.2)
    }

    #[test]
    fn same_seed_gives_identical_streams() {
        let mut a = FaultInjector::new(&plan(), 16, 10);
        let mut b = FaultInjector::new(&plan(), 16, 10);
        for layer in 1..=10 {
            assert_eq!(a.banks_failing_at(layer), b.banks_failing_at(layer));
            assert_eq!(a.corruption_strikes(), b.corruption_strikes());
        }
        for _ in 0..100 {
            assert_eq!(a.transfer_attempts(), b.transfer_attempts());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(&plan(), 64, 10);
        let other = FaultPlan { seed: 43, ..plan() };
        let mut b = FaultInjector::new(&other, 64, 10);
        let sa: Vec<_> = (1..=10).flat_map(|l| a.banks_failing_at(l)).collect();
        let sb: Vec<_> = (1..=10).flat_map(|l| b.banks_failing_at(l)).collect();
        assert_eq!(sa.len(), sb.len(), "same failure count either way");
        assert_ne!(sa, sb, "schedules should differ across seeds");
    }

    #[test]
    fn bank_failures_are_distinct_and_match_fraction() {
        let mut inj = FaultInjector::new(&plan(), 20, 5);
        assert_eq!(inj.planned_bank_failures(), 10);
        let mut banks: Vec<_> = (1..=5).flat_map(|l| inj.banks_failing_at(l)).collect();
        assert_eq!(banks.len(), 10);
        banks.sort();
        banks.dedup();
        assert_eq!(banks.len(), 10, "no bank fails twice");
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let quiet = FaultPlan::new(7);
        assert!(!quiet.is_active());
        let mut inj = FaultInjector::new(&quiet, 32, 100);
        assert_eq!(inj.planned_bank_failures(), 0);
        assert!(!inj.corruption_strikes());
        assert_eq!(inj.transfer_attempts(), Ok((0, 0)));
    }

    #[test]
    fn site_strikes_are_monotone_in_rate() {
        // At a fixed seed the struck-layer set must only grow with the rate.
        let layers = 64;
        let rates = [0.0, 0.1, 0.3, 0.6, 1.0];
        let mut prev_w: Vec<bool> = vec![false; layers];
        let mut prev_p: Vec<bool> = vec![false; layers];
        for rate in rates {
            let plan = FaultPlan::new(9)
                .with_weight_faults(rate, Protection::Parity)
                .with_pe_faults(rate, Protection::Parity);
            let mut inj = FaultInjector::new(&plan, 8, layers);
            let draws: Vec<SiteFaultDraw> = (0..layers).map(|_| inj.layer_site_faults()).collect();
            for (i, d) in draws.iter().enumerate() {
                assert!(
                    !prev_w[i] || d.weight_struck,
                    "weight strike at layer {i} vanished as the rate rose to {rate}"
                );
                assert!(!prev_p[i] || d.pe_struck, "pe strike at layer {i} vanished");
            }
            prev_w = draws.iter().map(|d| d.weight_struck).collect();
            prev_p = draws.iter().map(|d| d.pe_struck).collect();
        }
        assert!(prev_w.iter().all(|&s| s), "rate 1.0 strikes every layer");
        assert!(prev_p.iter().all(|&s| s));
    }

    #[test]
    fn site_stream_does_not_perturb_the_main_stream() {
        // Enabling site faults must leave the bank/DRAM draws untouched so
        // ECC runs reproduce fault-free traffic exactly.
        let base = FaultPlan::new(5).with_dram_faults(0.4).with_corruption(0.3);
        let with_sites = base
            .clone()
            .with_weight_faults(0.7, Protection::Ecc)
            .with_pe_faults(0.7, Protection::Ecc);
        let mut a = FaultInjector::new(&base, 16, 12);
        let mut b = FaultInjector::new(&with_sites, 16, 12);
        for layer in 1..=12 {
            assert_eq!(a.banks_failing_at(layer), b.banks_failing_at(layer));
            let _ = b.layer_site_faults();
            assert_eq!(a.corruption_strikes(), b.corruption_strikes());
            assert_eq!(a.transfer_attempts(), b.transfer_attempts());
        }
    }

    #[test]
    fn ecc_protection_alone_activates_the_plan() {
        let plan = FaultPlan::new(1).with_weight_faults(0.0, Protection::Ecc);
        assert!(plan.is_active(), "the ECC tax applies without any strike");
        let parity_only = FaultPlan::new(1).with_pe_faults(0.0, Protection::Parity);
        assert!(!parity_only.is_active(), "parity without strikes is free");
    }

    #[test]
    fn bcu_strikes_are_monotone_in_rate_and_leave_other_sites_alone() {
        let layers = 48;
        let mut prev: Vec<bool> = vec![false; layers];
        let mut baseline: Option<Vec<SiteFaultDraw>> = None;
        for rate in [0.0, 0.2, 0.5, 1.0] {
            let plan = FaultPlan::new(11).with_bcu_faults(rate, Protection::Ecc);
            let mut inj = FaultInjector::new(&plan, 8, layers);
            let draws: Vec<SiteFaultDraw> = (0..layers).map(|_| inj.layer_site_faults()).collect();
            for (i, d) in draws.iter().enumerate() {
                assert!(
                    !prev[i] || d.bcu_struck,
                    "BCU strike at layer {i} vanished as the rate rose to {rate}"
                );
            }
            prev = draws.iter().map(|d| d.bcu_struck).collect();
            // Enabling BCU faults must not move the weight/PE draws.
            match &baseline {
                None => baseline = Some(draws),
                Some(base) => {
                    for (b, d) in base.iter().zip(&draws) {
                        assert_eq!(b.weight_word, d.weight_word);
                        assert_eq!(b.pe_lane, d.pe_lane);
                        assert_eq!(b.bcu_entry, d.bcu_entry);
                    }
                }
            }
        }
        assert!(prev.iter().all(|&s| s), "rate 1.0 strikes every layer");
    }

    #[test]
    fn strike_widths_widen_monotonically_with_the_triple_rate() {
        // At a fixed seed, raising the 3+-bit rate can only move strikes
        // from Single/Double toward TriplePlus, never the reverse.
        fn rank(w: StrikeWidth) -> u8 {
            match w {
                StrikeWidth::Single => 0,
                StrikeWidth::Double => 1,
                StrikeWidth::TriplePlus => 2,
            }
        }
        let layers = 48;
        let mut prev: Option<Vec<StrikeWidth>> = None;
        for p3 in [0.0, 0.1, 0.4, 1.0] {
            let plan = FaultPlan::new(17)
                .with_weight_faults(1.0, Protection::Ecc)
                .with_multi_bit(0.3, p3);
            let mut inj = FaultInjector::new(&plan, 8, layers);
            let widths: Vec<StrikeWidth> = (0..layers)
                .map(|_| inj.layer_site_faults().weight_width)
                .collect();
            if let Some(prev) = &prev {
                for (a, b) in prev.iter().zip(&widths) {
                    assert!(rank(*b) >= rank(*a), "width narrowed as p3 rose to {p3}");
                }
            }
            prev = Some(widths);
        }
        assert!(prev.unwrap().iter().all(|&w| w == StrikeWidth::TriplePlus));
    }

    #[test]
    fn multi_bit_mass_is_clamped_to_one() {
        let plan = FaultPlan::new(0).with_multi_bit(0.8, 0.6);
        assert_eq!(plan.mbu_triple_rate, 0.6);
        assert!((plan.mbu_double_rate - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bcu_ecc_alone_activates_the_plan() {
        let plan = FaultPlan::new(1).with_bcu_faults(0.0, Protection::Ecc);
        assert!(plan.is_active(), "the table-scrub tax applies strike-free");
        let quiet = FaultPlan::new(1).with_bcu_faults(0.0, Protection::Parity);
        assert!(!quiet.is_active());
    }

    #[test]
    fn scheduler_strikes_are_monotone_and_leave_other_streams_alone() {
        let layers = 48;
        let mut prev: Vec<bool> = vec![false; layers];
        for rate in [0.0, 0.2, 0.5, 1.0] {
            let plan = FaultPlan::new(13)
                .with_dram_faults(0.4)
                .with_scheduler_faults(rate, Protection::Ecc);
            let mut with_sched = FaultInjector::new(&plan, 16, layers);
            let mut without =
                FaultInjector::new(&FaultPlan::new(13).with_dram_faults(0.4), 16, layers);
            for (i, p) in prev.iter_mut().enumerate() {
                // The dedicated stream leaves bank/DRAM and site draws
                // byte-identical to a scheduler-free plan.
                assert_eq!(
                    with_sched.banks_failing_at(i + 1),
                    without.banks_failing_at(i + 1)
                );
                let d = with_sched.layer_scheduler_faults();
                assert_eq!(with_sched.layer_site_faults(), without.layer_site_faults());
                assert_eq!(with_sched.transfer_attempts(), without.transfer_attempts());
                assert!(
                    !*p || d.struck,
                    "scheduler strike at layer {i} vanished as the rate rose to {rate}"
                );
                *p = d.struck;
            }
        }
        assert!(prev.iter().all(|&s| s), "rate 1.0 strikes every boundary");
    }

    #[test]
    fn scheduler_ecc_alone_activates_the_plan() {
        let plan = FaultPlan::new(1).with_scheduler_faults(0.0, Protection::Ecc);
        assert!(
            plan.is_active(),
            "checkpoints must be taken even when no strike can land"
        );
        let quiet = FaultPlan::new(1).with_scheduler_faults(0.0, Protection::Parity);
        assert!(!quiet.is_active());
    }

    #[test]
    fn default_recovery_budget_is_unlimited() {
        let b = RecoveryBudget::default();
        assert_eq!(b.refetches, None);
        assert_eq!(b.recomputes, None);
        assert_eq!(b.rollbacks, None);
        let plan = FaultPlan::new(3).with_recovery_budget(RecoveryBudget {
            refetches: Some(2),
            ..RecoveryBudget::default()
        });
        assert_eq!(plan.budget.refetches, Some(2));
        assert_eq!(plan.budget.rollbacks, None);
    }

    #[test]
    fn retry_budget_is_enforced() {
        let hostile = FaultPlan::new(1)
            .with_dram_faults(1.0)
            .with_retry_budget(2, 10);
        let mut inj = FaultInjector::new(&hostile, 8, 4);
        // Rate 1.0 always fails: budget of 2 retries means 3 failed
        // attempts, stalls 10 + 20 + 30.
        assert_eq!(inj.transfer_attempts(), Err((3, 60)));
    }
}
