use serde::{Deserialize, Serialize};

/// Who wins when a new output buffer competes with pinned shortcut banks.
///
/// Spilling a pinned shortcut costs one write now plus one read at the
/// junction; granting those banks to the output instead saves one write plus
/// one read of the output. The two nearly cancel, and measurement (Table 3)
/// shows retaining pinned data wins slightly on every evaluated network —
/// junction re-reads are cheap (no halo), while the freed output capacity
/// saves conv re-reads at a small multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AllocPriority {
    /// Pinned shortcut banks are retained; the output buffer takes whatever
    /// the free pool offers (default — the better design point).
    #[default]
    RetainPinned,
    /// The output buffer is sized first, spilling pinned banks to make room
    /// (ablation).
    OutputFirst,
}

/// Order in which pinned shortcut buffers are victimized under capacity
/// pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SpillOrder {
    /// Spill the shortcut whose junction is farthest in the schedule first —
    /// it will occupy banks the longest (default; the design-point choice
    /// called out in DESIGN.md).
    #[default]
    FarthestJunctionFirst,
    /// Spill the shortcut whose junction is nearest first (ablation).
    NearestJunctionFirst,
}

/// Which reuse procedures are active.
///
/// The policy space covers the paper's proposal, its ablations and the
/// baseline, so every experiment goes through one code path:
///
/// * [`Policy::baseline`] — the conventional fixed-buffer accelerator.
/// * [`Policy::swap_only`] — out–in buffer swapping without shortcut
///   pinning (adjacent reuse only).
/// * [`Policy::mining_only`] — shortcut pinning without adjacent swapping.
/// * [`Policy::shortcut_mining`] — the full proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// `false` selects the conventional baseline accelerator.
    pub logical_buffers: bool,
    /// Out–in buffer swapping (non-shortcut / adjacent reuse).
    pub out_in_swap: bool,
    /// Shortcut storing + reusing (pinning across intermediate layers).
    pub shortcut_mining: bool,
    /// Ablation: perform the out–in swap by copying between buffers instead
    /// of relabelling, charging SRAM energy and cycles for the copy.
    pub swap_by_copy: bool,
    /// Spill victim order.
    pub spill_order: SpillOrder,
    /// Output-buffer vs pinned-bank priority under capacity pressure.
    pub alloc_priority: AllocPriority,
    /// Plan per-layer tiles with the capacities the controller actually
    /// granted (larger output tiles when the pool is generous) instead of
    /// mirroring the baseline's fixed buffer halves. Breaks the
    /// iso-schedule guarantee — an ablation on that methodology choice.
    pub adaptive_tiling: bool,
}

impl Policy {
    /// The conventional accelerator (no logical buffers, no reuse).
    pub const fn baseline() -> Policy {
        Policy {
            logical_buffers: false,
            out_in_swap: false,
            shortcut_mining: false,
            swap_by_copy: false,
            spill_order: SpillOrder::FarthestJunctionFirst,
            alloc_priority: AllocPriority::RetainPinned,
            adaptive_tiling: false,
        }
    }

    /// The full Shortcut Mining proposal.
    pub const fn shortcut_mining() -> Policy {
        Policy {
            logical_buffers: true,
            out_in_swap: true,
            shortcut_mining: true,
            swap_by_copy: false,
            spill_order: SpillOrder::FarthestJunctionFirst,
            alloc_priority: AllocPriority::RetainPinned,
            adaptive_tiling: false,
        }
    }

    /// Out–in swapping only (the non-shortcut half of the proposal).
    pub const fn swap_only() -> Policy {
        Policy {
            out_in_swap: true,
            shortcut_mining: false,
            ..Policy::shortcut_mining()
        }
    }

    /// Shortcut pinning only (the shortcut half of the proposal).
    pub const fn mining_only() -> Policy {
        Policy {
            out_in_swap: false,
            shortcut_mining: true,
            ..Policy::shortcut_mining()
        }
    }

    /// Logical buffers present but every reuse procedure disabled — must
    /// reproduce baseline traffic exactly (the consistency anchor the tests
    /// pin down).
    pub const fn reuse_disabled() -> Policy {
        Policy {
            out_in_swap: false,
            shortcut_mining: false,
            ..Policy::shortcut_mining()
        }
    }

    /// Returns this policy with the copy-based swap ablation enabled.
    pub const fn with_swap_by_copy(mut self) -> Policy {
        self.swap_by_copy = true;
        self
    }

    /// Returns this policy with a different spill order.
    pub const fn with_spill_order(mut self, order: SpillOrder) -> Policy {
        self.spill_order = order;
        self
    }

    /// Returns this policy with a different allocation priority.
    pub const fn with_alloc_priority(mut self, priority: AllocPriority) -> Policy {
        self.alloc_priority = priority;
        self
    }

    /// Returns this policy with adaptive tiling enabled.
    pub const fn with_adaptive_tiling(mut self) -> Policy {
        self.adaptive_tiling = true;
        self
    }

    /// Architecture label used in reports.
    pub fn label(&self) -> &'static str {
        if !self.logical_buffers {
            return "baseline";
        }
        if self.alloc_priority == AllocPriority::OutputFirst {
            return "shortcut-mining-ob-first";
        }
        if self.adaptive_tiling {
            return "shortcut-mining-adaptive";
        }
        match (self.out_in_swap, self.shortcut_mining, self.swap_by_copy) {
            (true, true, false) => "shortcut-mining",
            (true, true, true) => "shortcut-mining-copy-swap",
            (true, false, _) => "swap-only",
            (false, true, _) => "mining-only",
            (false, false, _) => "reuse-disabled",
        }
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::shortcut_mining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_the_policy_space() {
        assert_eq!(Policy::baseline().label(), "baseline");
        assert_eq!(Policy::shortcut_mining().label(), "shortcut-mining");
        assert_eq!(Policy::swap_only().label(), "swap-only");
        assert_eq!(Policy::mining_only().label(), "mining-only");
        assert_eq!(Policy::reuse_disabled().label(), "reuse-disabled");
        assert_eq!(
            Policy::shortcut_mining().with_swap_by_copy().label(),
            "shortcut-mining-copy-swap"
        );
        assert_eq!(
            Policy::shortcut_mining().with_adaptive_tiling().label(),
            "shortcut-mining-adaptive"
        );
        assert_eq!(
            Policy::shortcut_mining()
                .with_alloc_priority(AllocPriority::OutputFirst)
                .label(),
            "shortcut-mining-ob-first"
        );
    }

    #[test]
    fn default_is_the_full_proposal() {
        assert_eq!(Policy::default(), Policy::shortcut_mining());
        assert_eq!(SpillOrder::default(), SpillOrder::FarthestJunctionFirst);
    }

    #[test]
    fn spill_order_override() {
        let p = Policy::shortcut_mining().with_spill_order(SpillOrder::NearestJunctionFirst);
        assert_eq!(p.spill_order, SpillOrder::NearestJunctionFirst);
        assert_eq!(p.label(), "shortcut-mining");
    }
}
