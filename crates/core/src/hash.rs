//! Stable 128-bit content hashing for the persistent result cache.
//!
//! The sweep-result cache (`sm_bench::cas`) keys disk entries by a hash of
//! the canonical serialized simulation inputs. The hash therefore has to be
//! *stable*: the same bytes must map to the same key across processes,
//! platforms, and releases, which rules out [`std::hash`]'s
//! `RandomState`-seeded hashers. FNV-1a widened to 128 bits fits exactly:
//! dependency-free, byte-order independent, trivially reproducible from the
//! published constants, and wide enough that collisions between distinct
//! sweep configurations are not a practical concern (the keyed space is
//! tiny compared to 2^128).
//!
//! [`Fnv128`] is the incremental hasher; [`fnv64`] is the narrower one-shot
//! variant used for per-entry integrity checksums, where a corrupted file
//! only needs to be *detected*, not globally unique.

/// FNV-1a offset basis for the 128-bit variant.
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime for the 128-bit variant (2^88 + 2^8 + 0x3b).
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// FNV-1a offset basis for the 64-bit variant.
const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime for the 64-bit variant.
const FNV64_PRIME: u64 = 0x100000001b3;

/// Incremental 128-bit FNV-1a hasher over byte streams.
///
/// # Example
///
/// ```
/// use sm_core::hash::Fnv128;
///
/// let mut h = Fnv128::new();
/// h.update(b"chaos-grid");
/// h.update(b"resnet34");
/// let whole = Fnv128::of(b"chaos-gridresnet34");
/// assert_eq!(h.finish(), whole);
/// assert_ne!(whole, Fnv128::of(b"chaos-gridresnet50"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Folds `bytes` into the running state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The digest of everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// One-shot digest of a byte slice.
    pub fn of(bytes: &[u8]) -> u128 {
        let mut h = Fnv128::new();
        h.update(bytes);
        h.finish()
    }
}

/// One-shot 64-bit FNV-1a digest — the per-entry integrity checksum of the
/// on-disk result cache.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = FNV64_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV64_PRIME);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_fnv1a_vectors() {
        // The canonical FNV-1a test vectors (draft-eastlake-fnv).
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(Fnv128::of(b""), FNV128_OFFSET);
    }

    #[test]
    fn incremental_equals_one_shot_at_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = Fnv128::of(data);
        for split in 0..=data.len() {
            let mut h = Fnv128::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_byte_difference_changes_the_digest() {
        let a = Fnv128::of(b"seed:42 policy:shortcut-mining banks:512");
        let b = Fnv128::of(b"seed:43 policy:shortcut-mining banks:512");
        let c = Fnv128::of(b"seed:42 policy:shortcut-mining banks:513");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
