use std::error::Error;
use std::fmt;

use sm_accel::AccelError;
use sm_buffer::BufferError;
use sm_mem::TrafficClass;

/// Typed error for a Shortcut Mining simulation.
///
/// The hot path (`ShortcutMiner::try_simulate` and everything under it)
/// returns these instead of panicking, so fault-injection harnesses can
/// tell a graceful refusal apart from a crash.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A logical-buffer operation failed.
    Buffer(BufferError),
    /// The shared accelerator substrate rejected the network.
    Accel(AccelError),
    /// A DRAM transfer kept failing past the fault plan's retry budget.
    RetryExhausted {
        /// Schedule index of the layer whose transfer failed.
        layer: usize,
        /// Traffic class of the doomed transfer.
        class: TrafficClass,
        /// Attempts made (initial try plus retries).
        attempts: u32,
    },
    /// A checked-mode invariant was violated after a layer.
    Invariant {
        /// Schedule index of the layer after which the check failed.
        layer: usize,
        /// What went wrong.
        message: String,
    },
    /// An ECC-protected site reported a detected-but-uncorrectable (DUE)
    /// multi-bit strike and the fault plan's `RecoveryPolicy::Abort` (or
    /// an exhausted recovery budget) refused to repair it.
    Unrecoverable {
        /// Schedule index of the layer executing when the DUE landed.
        layer: usize,
        /// Human-readable name of the struck site.
        site: String,
    },
    /// An analysis helper was asked a malformed question (empty network,
    /// zero capacity, an unsatisfiable target) it previously panicked on.
    Analysis {
        /// What was malformed.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Buffer(e) => write!(f, "buffer error: {e}"),
            SimError::Accel(e) => write!(f, "accelerator error: {e}"),
            SimError::RetryExhausted {
                layer,
                class,
                attempts,
            } => write!(
                f,
                "layer {layer}: {class} transfer failed after {attempts} attempts"
            ),
            SimError::Invariant { layer, message } => {
                write!(f, "invariant violated after layer {layer}: {message}")
            }
            SimError::Unrecoverable { layer, site } => {
                write!(
                    f,
                    "layer {layer}: uncorrectable multi-bit strike at {site} and no recovery"
                )
            }
            SimError::Analysis { message } => write!(f, "analysis error: {message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Buffer(e) => Some(e),
            SimError::Accel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BufferError> for SimError {
    fn from(e: BufferError) -> Self {
        SimError::Buffer(e)
    }
}

impl From<AccelError> for SimError {
    fn from(e: AccelError) -> Self {
        SimError::Accel(e)
    }
}
