use serde::Serialize;

/// One residency event of a simulated Shortcut Mining run.
///
/// The trace is the simulator's externally checkable account of *where every
/// feature-map element lived*: the functional checker replays it at value
/// level to prove no element is ever read from a place it was never stored.
/// All quantities are in elements of the feature map identified by its
/// producing layer's schedule index (`fm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceEvent {
    /// Layer `fm` produced its feature map: `resident_elems` stayed on chip
    /// (prefix), `dram_elems` were written to DRAM (suffix; may overlap the
    /// resident prefix when a full write-back is forced).
    Produce {
        /// Producing layer index.
        fm: usize,
        /// Total elements.
        total_elems: u64,
        /// On-chip prefix length.
        resident_elems: u64,
        /// Elements written to DRAM as a suffix.
        dram_elems: u64,
    },
    /// `fm`'s resident prefix shrank to `new_resident_elems` — either a
    /// capacity-pressure eviction (the evicted range is written to DRAM as
    /// spill traffic) or a policy drop of residency whose DRAM copy already
    /// exists (no traffic). Either way the evicted range is in DRAM after
    /// this event.
    Spill {
        /// Feature map being evicted from.
        fm: usize,
        /// New (smaller) resident prefix.
        new_resident_elems: u64,
    },
    /// Layer `consumer` fetched the non-resident suffix of `fm` from DRAM.
    FetchMissing {
        /// Feature map read.
        fm: usize,
        /// Consuming layer index.
        consumer: usize,
        /// Elements fetched (the suffix `[resident, total)`).
        elems: u64,
    },
    /// `fm`'s last consumer finished; its banks returned to the pool.
    Free {
        /// Feature map released.
        fm: usize,
    },
    /// A hardware site fault struck while layer `layer` executed, and was
    /// resolved per the site's protection policy. Silent outcomes corrupt
    /// the layer's output feature map (`fm == layer`); detected,
    /// corrected, and recovered-uncorrectable outcomes leave values
    /// intact, so the functional replay stays externally checkable either
    /// way.
    Fault {
        /// Layer executing when the strike landed (also the corrupted
        /// feature map for silent outcomes).
        layer: usize,
        /// Hardware site struck.
        site: FaultSite,
        /// Struck unit within the site: weight-SRAM word index, PE lane,
        /// or BCU table-entry index.
        unit: u64,
        /// How the strike was resolved.
        outcome: FaultOutcome,
    },
    /// The recovery engine repaired a detected-uncorrectable (DUE) strike
    /// at layer `layer`: the matching [`TraceEvent::Fault`] carries
    /// [`FaultOutcome::Uncorrectable`], and this event records what the
    /// repair cost. Values are intact afterwards, so the replay treats it
    /// as a no-op.
    Recovery {
        /// Layer whose DUE was repaired.
        layer: usize,
        /// Site the uncorrectable strike hit.
        site: FaultSite,
        /// How the engine repaired it.
        action: RecoveryAction,
        /// Bytes re-streamed from DRAM as `TrafficClass::Retry`.
        retry_bytes: u64,
        /// Compute cycles re-spent re-executing the layer (zero for pure
        /// refetches).
        compute_cycles: u64,
    },
}

/// Hardware site a [`TraceEvent::Fault`] struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultSite {
    /// A word of the on-chip weight SRAM.
    WeightSram,
    /// One MAC lane of the PE array.
    PeArray,
    /// A BCU mapping-table entry routing one logical buffer.
    BcuTable {
        /// Logical buffer whose routing entry was struck.
        buffer: usize,
    },
    /// One of the scheduler's own metadata structures, struck at a layer
    /// boundary.
    Scheduler {
        /// Which structure was struck.
        structure: SchedStructure,
    },
}

/// Scheduler-metadata structure a [`FaultSite::Scheduler`] strike landed
/// in. All three embody the shortcut-mining decisions the simulator made,
/// so corrupting any of them degrades *decisions* (residency, pinning,
/// victim order) while leaving tensor values intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SchedStructure {
    /// The per-shortcut retention records tracking resident prefixes.
    RetentionTable,
    /// The pin labels keeping shortcut buffers ineligible for spilling.
    PinSet,
    /// The victim-ordering state of the spill engine.
    SpillQueue,
}

impl SchedStructure {
    /// Human-readable name, used in diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SchedStructure::RetentionTable => "retention table",
            SchedStructure::PinSet => "pin set",
            SchedStructure::SpillQueue => "spill queue",
        }
    }
}

/// Resolution of a [`TraceEvent::Fault`], fixed by the site's
/// `sm_core::Protection` policy (and, for [`FaultOutcome::Uncorrectable`],
/// followed by a [`TraceEvent::Recovery`] unless the policy aborts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultOutcome {
    /// Unprotected (or 3+-bit ECC aliasing): the layer's output is
    /// silently corrupted.
    Silent,
    /// Parity-detected: repaired by weight refetch / lane recompute /
    /// table rebuild.
    Detected,
    /// ECC-corrected in place.
    Corrected,
    /// ECC-detected but uncorrectable (multi-bit): handed to the recovery
    /// policy.
    Uncorrectable,
}

/// How a [`TraceEvent::Recovery`] repaired a DUE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RecoveryAction {
    /// The layer's source data was re-DMAed from DRAM in full.
    Refetched,
    /// The layer was re-executed from (mostly) resident inputs.
    Recomputed,
    /// Scheduler metadata was restored from the last layer-boundary
    /// checkpoint and the layer replayed, touching DRAM only for the plain
    /// input stream.
    RolledBack,
}

/// Full event trace of one run, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// Events in the order the simulator performed them.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Structural well-formedness: every feature map is produced exactly
    /// once before any other event touches it, freed at most once and never
    /// touched after its free, spills only shrink residency, and fetches
    /// never exceed the missing suffix. Returns the first violation as a
    /// human-readable message.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn check_well_formed(&self) -> Result<(), String> {
        use std::collections::HashMap;
        #[derive(Clone, Copy)]
        struct St {
            resident: u64,
            total: u64,
            freed: bool,
        }
        let mut fms: HashMap<usize, St> = HashMap::new();
        // The network input (fm 0) pre-exists fully in DRAM.
        fms.insert(
            0,
            St {
                resident: 0,
                total: u64::MAX,
                freed: false,
            },
        );
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                TraceEvent::Produce {
                    fm,
                    total_elems,
                    resident_elems,
                    dram_elems,
                } => {
                    if fms.contains_key(&fm) {
                        return Err(format!("event {i}: fm {fm} produced twice"));
                    }
                    if resident_elems > total_elems || dram_elems > total_elems {
                        return Err(format!("event {i}: fm {fm} over-produced"));
                    }
                    if resident_elems + dram_elems < total_elems {
                        return Err(format!("event {i}: fm {fm} has a coverage hole"));
                    }
                    fms.insert(
                        fm,
                        St {
                            resident: resident_elems,
                            total: total_elems,
                            freed: false,
                        },
                    );
                }
                TraceEvent::Spill {
                    fm,
                    new_resident_elems,
                } => {
                    let st = fms
                        .get_mut(&fm)
                        .ok_or(format!("event {i}: spill of unproduced fm {fm}"))?;
                    if st.freed {
                        return Err(format!("event {i}: spill after free of fm {fm}"));
                    }
                    if new_resident_elems > st.resident {
                        return Err(format!("event {i}: spill grew fm {fm}"));
                    }
                    st.resident = new_resident_elems;
                }
                TraceEvent::FetchMissing { fm, elems, .. } => {
                    let st = fms
                        .get(&fm)
                        .ok_or(format!("event {i}: fetch of unproduced fm {fm}"))?;
                    if st.total != u64::MAX && elems != st.total - st.resident {
                        return Err(format!(
                            "event {i}: fm {fm} fetched {elems}, missing {}",
                            st.total - st.resident
                        ));
                    }
                }
                TraceEvent::Free { fm } => {
                    let st = fms
                        .get_mut(&fm)
                        .ok_or(format!("event {i}: free of unproduced fm {fm}"))?;
                    if st.freed {
                        return Err(format!("event {i}: double free of fm {fm}"));
                    }
                    st.freed = true;
                }
                TraceEvent::Fault { layer, .. } => {
                    // A strike is logically part of the layer's execution;
                    // its output must already be produced when it is logged.
                    if !fms.contains_key(&layer) {
                        return Err(format!("event {i}: fault at unproduced layer {layer}"));
                    }
                }
                TraceEvent::Recovery { layer, .. } => {
                    if !fms.contains_key(&layer) {
                        return Err(format!("event {i}: recovery at unproduced layer {layer}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Events touching feature map `fm`.
    pub fn for_fm(&self, fm: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| match e {
            TraceEvent::Produce { fm: f, .. }
            | TraceEvent::Spill { fm: f, .. }
            | TraceEvent::FetchMissing { fm: f, .. }
            | TraceEvent::Free { fm: f }
            | TraceEvent::Fault { layer: f, .. }
            | TraceEvent::Recovery { layer: f, .. } => *f == fm,
        })
    }
}

/// How much of a pinned shortcut survived to its junction.
///
/// One record is emitted per shortcut edge consumed at a junction; the
/// intermediate-layer experiment (Fig. 17 in DESIGN.md's index) aggregates
/// survival by `skip` distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetentionRecord {
    /// Producing layer of the shortcut data.
    pub producer: usize,
    /// Junction layer that consumed it.
    pub junction: usize,
    /// Intermediate layers crossed.
    pub skip: usize,
    /// Fraction of the feature map still resident at the junction.
    pub resident_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn produce(fm: usize, total: u64, resident: u64, dram: u64) -> TraceEvent {
        TraceEvent::Produce {
            fm,
            total_elems: total,
            resident_elems: resident,
            dram_elems: dram,
        }
    }

    #[test]
    fn well_formed_accepts_a_valid_history() {
        let t = Trace {
            events: vec![
                produce(1, 100, 60, 40),
                TraceEvent::Spill {
                    fm: 1,
                    new_resident_elems: 30,
                },
                TraceEvent::FetchMissing {
                    fm: 1,
                    consumer: 2,
                    elems: 70,
                },
                TraceEvent::Free { fm: 1 },
            ],
        };
        t.check_well_formed().unwrap();
    }

    #[test]
    fn well_formed_rejects_double_produce() {
        let t = Trace {
            events: vec![produce(1, 10, 10, 0), produce(1, 10, 10, 0)],
        };
        assert!(t
            .check_well_formed()
            .unwrap_err()
            .contains("produced twice"));
    }

    #[test]
    fn well_formed_rejects_coverage_holes() {
        let t = Trace {
            events: vec![produce(1, 100, 30, 40)],
        };
        assert!(t.check_well_formed().unwrap_err().contains("coverage hole"));
    }

    #[test]
    fn well_formed_rejects_growing_spills_and_double_frees() {
        let t = Trace {
            events: vec![
                produce(1, 10, 5, 5),
                TraceEvent::Spill {
                    fm: 1,
                    new_resident_elems: 9,
                },
            ],
        };
        assert!(t.check_well_formed().unwrap_err().contains("grew"));
        let t = Trace {
            events: vec![
                produce(1, 10, 10, 0),
                TraceEvent::Free { fm: 1 },
                TraceEvent::Free { fm: 1 },
            ],
        };
        assert!(t.check_well_formed().unwrap_err().contains("double free"));
    }

    #[test]
    fn well_formed_rejects_mismatched_fetches_and_unknown_fms() {
        let t = Trace {
            events: vec![
                produce(1, 100, 60, 40),
                TraceEvent::FetchMissing {
                    fm: 1,
                    consumer: 2,
                    elems: 99,
                },
            ],
        };
        assert!(t.check_well_formed().unwrap_err().contains("fetched"));
        let t = Trace {
            events: vec![TraceEvent::Free { fm: 7 }],
        };
        assert!(t.check_well_formed().unwrap_err().contains("unproduced"));
        // fm 0 (the network input) pre-exists and may be fetched freely.
        let t = Trace {
            events: vec![TraceEvent::FetchMissing {
                fm: 0,
                consumer: 1,
                elems: 123,
            }],
        };
        t.check_well_formed().unwrap();
    }

    #[test]
    fn fault_events_require_a_produced_layer() {
        let fault = TraceEvent::Fault {
            layer: 1,
            site: FaultSite::PeArray,
            unit: 3,
            outcome: FaultOutcome::Silent,
        };
        let t = Trace {
            events: vec![produce(1, 10, 10, 0), fault],
        };
        t.check_well_formed().unwrap();
        let t = Trace {
            events: vec![fault],
        };
        assert!(t
            .check_well_formed()
            .unwrap_err()
            .contains("fault at unproduced layer"));
        // Fault events count as touching the struck layer's feature map.
        let t = Trace {
            events: vec![produce(1, 10, 10, 0), fault],
        };
        assert_eq!(t.for_fm(1).count(), 2);
    }

    #[test]
    fn recovery_events_require_a_produced_layer() {
        let recovery = TraceEvent::Recovery {
            layer: 1,
            site: FaultSite::BcuTable { buffer: 4 },
            action: RecoveryAction::Recomputed,
            retry_bytes: 0,
            compute_cycles: 128,
        };
        let t = Trace {
            events: vec![produce(1, 10, 10, 0), recovery],
        };
        t.check_well_formed().unwrap();
        assert_eq!(t.for_fm(1).count(), 2);
        let t = Trace {
            events: vec![recovery],
        };
        assert!(t
            .check_well_formed()
            .unwrap_err()
            .contains("recovery at unproduced layer"));
    }

    #[test]
    fn for_fm_filters_all_variants() {
        let t = Trace {
            events: vec![
                TraceEvent::Produce {
                    fm: 1,
                    total_elems: 10,
                    resident_elems: 10,
                    dram_elems: 0,
                },
                TraceEvent::Spill {
                    fm: 2,
                    new_resident_elems: 0,
                },
                TraceEvent::FetchMissing {
                    fm: 1,
                    consumer: 3,
                    elems: 0,
                },
                TraceEvent::Free { fm: 1 },
            ],
        };
        assert_eq!(t.for_fm(1).count(), 3);
        assert_eq!(t.for_fm(2).count(), 1);
        assert_eq!(t.for_fm(9).count(), 0);
    }
}
