//! Capacity planning analysis: how much on-chip SRAM a network needs for
//! Shortcut Mining to deliver its full benefit.
//!
//! Three quantities matter to an architect sizing the bank pool:
//!
//! * [`peak_live_bytes`] — the liveness lower bound: the largest set of
//!   feature-map bytes simultaneously alive under the schedule. No pool
//!   smaller than this can ever keep everything on chip.
//! * [`ReuseBounds::ideal_reduction`] — the traffic reduction at effectively
//!   infinite capacity: the ceiling set by the network topology (boundary
//!   I/O and streaming overheads remain).
//! * [`capacity_for_fraction`] — the smallest pool (via bisection over
//!   simulated runs) achieving a target fraction of that ceiling.

use serde::Serialize;

use sm_accel::{AccelConfig, BaselineAccelerator};
use sm_model::liveness::Liveness;
use sm_model::Network;

use crate::{Policy, ShortcutMiner, SimError, SimOptions};

/// Capacity used as "effectively infinite" for the ideal-reduction probe.
const INFINITE_CAPACITY: u64 = 1 << 30;

/// Liveness lower bound on the pool capacity for an all-on-chip schedule,
/// in bytes at the configuration's element width.
pub fn peak_live_bytes(net: &Network, elem_bytes: u64) -> u64 {
    let (peak_elems, _) = Liveness::of(net).peak_live_elems();
    peak_elems as u64 * elem_bytes
}

/// Reduction achieved by `policy` at feature-map capacity `bytes`, against
/// the baseline at the *same* capacity (iso-capacity comparison).
///
/// Returns [`SimError::Analysis`] for malformed questions (an empty network
/// or a zero-byte pool) instead of panicking deep inside the simulators, and
/// propagates any simulation error from either run.
pub fn reduction_at_capacity(
    net: &Network,
    base_config: AccelConfig,
    policy: Policy,
    bytes: u64,
) -> Result<f64, SimError> {
    if net.layers().is_empty() {
        return Err(SimError::Analysis {
            message: "cannot compute a traffic reduction for an empty network".into(),
        });
    }
    if bytes == 0 {
        return Err(SimError::Analysis {
            message: "feature-map capacity of 0 bytes admits no schedule".into(),
        });
    }
    let cfg = base_config.with_fm_capacity(bytes);
    let base = BaselineAccelerator::new(cfg).try_simulate(net)?;
    let sm = ShortcutMiner::new(cfg, policy).try_simulate(net, &SimOptions::default())?;
    Ok(1.0 - sm.stats.fm_traffic_bytes() as f64 / base.fm_traffic_bytes().max(1) as f64)
}

/// Reuse bounds of one network under one configuration/policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReuseBounds {
    /// Liveness lower bound in bytes.
    pub peak_live_bytes: u64,
    /// Traffic reduction at effectively infinite capacity.
    pub ideal_reduction: f64,
    /// Reduction at the configuration's own capacity.
    pub configured_reduction: f64,
}

impl ReuseBounds {
    /// Computes the bounds for `net`, propagating any simulation or
    /// malformed-input error from the two probe runs.
    pub fn of(net: &Network, config: AccelConfig, policy: Policy) -> Result<ReuseBounds, SimError> {
        Ok(ReuseBounds {
            peak_live_bytes: peak_live_bytes(net, config.elem_bytes),
            ideal_reduction: reduction_at_capacity(net, config, policy, INFINITE_CAPACITY)?,
            configured_reduction: reduction_at_capacity(
                net,
                config,
                policy,
                config.sram.fm_bytes(),
            )?,
        })
    }
}

/// Smallest feature-map capacity (bisection, 8 KiB resolution) at which the
/// policy achieves at least `fraction` of its ideal reduction. Returns
/// `Ok(None)` when even an effectively infinite pool misses the target
/// (fraction > 1), and [`SimError::Analysis`] for a fraction that is not a
/// finite non-negative number.
pub fn capacity_for_fraction(
    net: &Network,
    config: AccelConfig,
    policy: Policy,
    fraction: f64,
) -> Result<Option<u64>, SimError> {
    if !fraction.is_finite() || fraction < 0.0 {
        return Err(SimError::Analysis {
            message: format!("target fraction {fraction} is not a finite non-negative number"),
        });
    }
    let ideal = reduction_at_capacity(net, config, policy, INFINITE_CAPACITY)?;
    let target = ideal * fraction;
    if ideal < target {
        return Ok(None);
    }
    let (mut lo, mut hi) = (8u64 * 1024, INFINITE_CAPACITY);
    if reduction_at_capacity(net, config, policy, lo)? >= target {
        return Ok(Some(lo));
    }
    // Invariant: reduction(lo) < target <= reduction(hi). Reduction is
    // monotone in capacity up to simulation granularity; bisection finds
    // the crossover to 8 KiB.
    while hi - lo > 8 * 1024 {
        let mid = lo + (hi - lo) / 2;
        if reduction_at_capacity(net, config, policy, mid)? >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_model::zoo;

    #[test]
    fn ideal_reduction_is_an_upper_bound() {
        let cfg = AccelConfig::default();
        for net in [zoo::resnet34(1), zoo::squeezenet_v10_simple_bypass(1)] {
            let b = ReuseBounds::of(&net, cfg, Policy::shortcut_mining()).expect("valid input");
            assert!(
                b.ideal_reduction >= b.configured_reduction - 1e-9,
                "{}: {b:?}",
                net.name()
            );
            assert!(
                b.ideal_reduction > 0.9,
                "{}: {}",
                net.name(),
                b.ideal_reduction
            );
            assert!(b.peak_live_bytes > 0);
        }
    }

    #[test]
    fn peak_live_tracks_the_biggest_stage() {
        // ResNet-34's peak live set is around the stem/conv2 boundary:
        // several hundred KiB at 16-bit.
        let bytes = peak_live_bytes(&zoo::resnet34(1), 2);
        assert!((1 << 20..16 << 20).contains(&bytes), "{bytes}");
        // The toy network's peak is tiny.
        let toy = peak_live_bytes(&zoo::toy_residual(1), 2);
        assert!(toy < 8 << 10, "{toy}");
    }

    #[test]
    fn capacity_bisection_finds_a_sufficient_pool() {
        let cfg = AccelConfig::default();
        let net = zoo::resnet_tiny(2, 1);
        let cap = capacity_for_fraction(&net, cfg, Policy::shortcut_mining(), 0.95)
            .expect("valid input")
            .expect("achievable");
        let at_cap =
            reduction_at_capacity(&net, cfg, Policy::shortcut_mining(), cap).expect("valid");
        let ideal =
            reduction_at_capacity(&net, cfg, Policy::shortcut_mining(), 1 << 30).expect("valid");
        assert!(at_cap >= 0.95 * ideal - 1e-9, "{at_cap} vs {ideal}");
        // And it is genuinely small for a CIFAR-scale network.
        assert!(cap <= 1 << 20, "{cap}");
    }

    #[test]
    fn malformed_questions_become_typed_errors() {
        let cfg = AccelConfig::default();
        let net = zoo::toy_residual(1);
        // Zero capacity is refused up front, not deep in the simulator.
        let err = reduction_at_capacity(&net, cfg, Policy::shortcut_mining(), 0)
            .expect_err("zero capacity");
        assert!(matches!(err, SimError::Analysis { .. }), "{err}");
        // A non-finite target fraction is refused the same way.
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let err = capacity_for_fraction(&net, cfg, Policy::shortcut_mining(), bad)
                .expect_err("bad fraction");
            assert!(matches!(err, SimError::Analysis { .. }), "{err}");
        }
        // An over-unity fraction is a well-formed question with answer "no".
        let none = capacity_for_fraction(&net, cfg, Policy::shortcut_mining(), 1.5)
            .expect("well-formed question");
        assert_eq!(none, None);
    }
}
