//! Value-preservation verification.
//!
//! [`verify_value_preservation`] proves, for a concrete network / policy /
//! configuration, that the Shortcut Mining schedule never loses data: it
//! replays the simulator's residency [`crate::Trace`] at *value* level,
//! holding an actual copy of every on-chip prefix and DRAM suffix, and
//! re-executes each layer from operands reconstructed **only** from those
//! copies. Any accounting bug — a read of never-written DRAM, a spill that
//! drops bytes, a resident prefix longer than what was produced — surfaces
//! as a [`CheckError`] rather than a silently wrong figure.
//!
//! Because the golden executor is the single source of arithmetic, the final
//! outputs are bit-identical to a plain golden run whenever the replay
//! succeeds; the checker asserts that too.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use sm_accel::AccelConfig;
use sm_model::exec::GoldenExecutor;
use sm_model::{LayerId, Network};
use sm_tensor::Tensor;

use crate::{
    FaultOutcome, FaultSite, Policy, SchedStructure, ShortcutMiner, SimError, SimOptions,
    TraceEvent,
};

/// Builds the localized mismatch diagnostic: the producing layer's name and
/// the NCHW coordinate of the first element that differs from the golden
/// value (tile-level localization for fault triage).
fn value_mismatch(net: &Network, fm: usize, ours: &Tensor, golden: &Tensor) -> CheckError {
    let max_diff = ours.max_abs_diff(golden).expect("same shapes");
    let idx = ours
        .as_slice()
        .iter()
        .zip(golden.as_slice())
        .position(|(a, b)| a != b)
        .unwrap_or(0);
    let s = golden.shape();
    let per_c = (s.h * s.w).max(1);
    let per_n = (s.c * per_c).max(1);
    CheckError::ValueMismatch {
        fm,
        layer: net.layers()[fm].name.clone(),
        coord: [
            idx / per_n,
            (idx % per_n) / per_c,
            (idx % per_c) / s.w.max(1),
            idx % s.w.max(1),
        ],
        max_diff,
    }
}

/// Upgrades a plain value mismatch to the BCU-misroute diagnostic when the
/// trace recorded a silent mapping-table strike on the mismatching feature
/// map's routing entry; `consumer` is the layer that observed the wrong
/// values.
fn mismatch_diag(
    net: &Network,
    fm: usize,
    consumer: usize,
    ours: &Tensor,
    golden: &Tensor,
    bcu_strikes: &HashMap<usize, usize>,
) -> CheckError {
    match (bcu_strikes.get(&fm), value_mismatch(net, fm, ours, golden)) {
        (
            Some(&buffer),
            CheckError::ValueMismatch {
                fm,
                layer,
                coord,
                max_diff,
            },
        ) => CheckError::BcuMisroute {
            fm,
            layer,
            buffer,
            distance: consumer.saturating_sub(fm),
            coord,
            max_diff,
        },
        (_, err) => err,
    }
}

/// Violation found while replaying a trace at value level.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckError {
    /// The simulation itself failed before producing a trace to check.
    Sim(SimError),
    /// `resident + dram_suffix < total`: some elements live nowhere.
    CoverageHole {
        /// Feature map with the hole.
        fm: usize,
        /// Elements reachable.
        covered: u64,
        /// Elements required.
        total: u64,
    },
    /// A consumer fetched more from DRAM than the DRAM suffix holds.
    FetchBeyondDram {
        /// Feature map read.
        fm: usize,
        /// Elements requested.
        requested: u64,
        /// Elements available in DRAM.
        available: u64,
    },
    /// A reconstructed operand or output differs from the golden value.
    ValueMismatch {
        /// Feature map that differs.
        fm: usize,
        /// Name of the layer that produced the differing feature map.
        layer: String,
        /// NCHW coordinate of the first differing element — the tile the
        /// corruption landed in.
        coord: [usize; 4],
        /// Maximum absolute difference observed.
        max_diff: f32,
    },
    /// The trace referenced a feature map that was never produced.
    UnknownFm(usize),
    /// A reconstructed operand differs from the golden value *and* the
    /// trace shows a silent BCU mapping-table strike on the feature map's
    /// routing entry: the mismatch is misrouted data, localized to the
    /// logical buffer whose entry was struck and the layer distance the
    /// corruption travelled before a consumer read it.
    BcuMisroute {
        /// Feature map that was misrouted.
        fm: usize,
        /// Name of the layer that produced it.
        layer: String,
        /// Logical buffer whose mapping entry was struck.
        buffer: usize,
        /// Layers between the strike and the consumer that observed it
        /// (shortcut data can cross many).
        distance: usize,
        /// NCHW coordinate of the first differing element.
        coord: [usize; 4],
        /// Maximum absolute difference observed.
        max_diff: f32,
    },
    /// The trace recorded a silent strike on the scheduler's own state.
    /// Tensor values stay intact — the corruption degrades *decisions*
    /// (residency, pinning, victim order) — but the layer-boundary
    /// consistency hash over the scheduler metadata no longer matches, so
    /// checked mode refuses to trust anything scheduled after it.
    SchedulerCorrupt {
        /// Layer boundary where the hash mismatch was detected.
        layer: usize,
        /// Scheduler structure the silent strike landed in.
        structure: SchedStructure,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Sim(e) => write!(f, "simulation failed: {e}"),
            CheckError::CoverageHole { fm, covered, total } => {
                write!(f, "fm {fm}: only {covered} of {total} elements reachable")
            }
            CheckError::FetchBeyondDram {
                fm,
                requested,
                available,
            } => write!(
                f,
                "fm {fm}: fetched {requested} elements but DRAM holds {available}"
            ),
            CheckError::ValueMismatch {
                fm,
                layer,
                coord,
                max_diff,
            } => {
                write!(
                    f,
                    "fm {fm} (layer `{layer}`): reconstructed values differ by {max_diff}, \
                     first at element [n={}, c={}, h={}, w={}]",
                    coord[0], coord[1], coord[2], coord[3]
                )
            }
            CheckError::UnknownFm(fm) => write!(f, "trace references unproduced fm {fm}"),
            CheckError::BcuMisroute {
                fm,
                layer,
                buffer,
                distance,
                coord,
                max_diff,
            } => write!(
                f,
                "fm {fm} (layer `{layer}`): misrouted by a silent BCU table strike on \
                 logical buffer {buffer}, observed {distance} layer(s) downstream; values \
                 differ by {max_diff}, first at element [n={}, c={}, h={}, w={}]",
                coord[0], coord[1], coord[2], coord[3]
            ),
            CheckError::SchedulerCorrupt { layer, structure } => write!(
                f,
                "layer {layer}: silent strike on the scheduler's {}; the boundary \
                 consistency hash over the scheduler metadata no longer matches",
                structure.name()
            ),
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for CheckError {
    fn from(e: SimError) -> Self {
        CheckError::Sim(e)
    }
}

/// Value-level state of one feature map during replay.
struct FmState {
    total: u64,
    /// On-chip prefix values.
    resident: Vec<f32>,
    /// DRAM suffix values (`total - dram.len()` is the suffix start).
    dram: Vec<f32>,
}

impl FmState {
    fn covered(&self) -> u64 {
        let suffix_start = self.total as usize - self.dram.len();
        if self.resident.len() >= suffix_start {
            self.total
        } else {
            (self.resident.len() + self.dram.len()) as u64
        }
    }

    /// Rebuilds the full feature map strictly from the stored copies.
    fn reconstruct(&self, fm: usize) -> Result<Vec<f32>, CheckError> {
        if self.covered() < self.total {
            return Err(CheckError::CoverageHole {
                fm,
                covered: self.covered(),
                total: self.total,
            });
        }
        let total = self.total as usize;
        let suffix_start = total - self.dram.len();
        let mut full = Vec::with_capacity(total);
        full.extend_from_slice(&self.resident);
        full.extend_from_slice(&self.dram[full.len() - suffix_start..]);
        debug_assert_eq!(full.len(), total);
        Ok(full)
    }
}

/// Replays a Shortcut Mining run of `net` at value level.
///
/// Runs the golden executor with `seed`, simulates the network under
/// (`config`, `policy`), then replays the trace with real values and
/// re-evaluates every layer from reconstructed operands.
///
/// # Errors
///
/// Returns the first [`CheckError`] encountered; `Ok(())` means the schedule
/// is value-preserving for this input.
///
/// # Panics
///
/// Panics when `policy` is the baseline (no trace to check).
///
/// # Example
///
/// ```
/// use sm_accel::AccelConfig;
/// use sm_core::functional::verify_value_preservation;
/// use sm_core::Policy;
/// use sm_model::zoo;
///
/// let net = zoo::toy_residual(1);
/// verify_value_preservation(&net, AccelConfig::default(), Policy::shortcut_mining(), 42)
///     .expect("the schedule must be value-preserving");
/// ```
pub fn verify_value_preservation(
    net: &Network,
    config: AccelConfig,
    policy: Policy,
    seed: u64,
) -> Result<(), CheckError> {
    verify_value_preservation_with(net, config, policy, seed, &SimOptions::default())
}

/// Like [`verify_value_preservation`] but simulating under explicit
/// [`SimOptions`] — in particular a fault plan. A faulty schedule must still
/// be value-preserving: every revoked bank is evacuated to DRAM and every
/// corrupted prefix is re-fetched, so the replay holds or the simulation
/// itself returns a typed [`SimError`] (surfaced as [`CheckError::Sim`]).
pub fn verify_value_preservation_with(
    net: &Network,
    config: AccelConfig,
    policy: Policy,
    seed: u64,
    options: &SimOptions,
) -> Result<(), CheckError> {
    let exec = GoldenExecutor::new(net, seed);
    let golden = exec.run().expect("golden execution of a built network");
    let run = ShortcutMiner::new(config, policy).try_simulate(net, options)?;

    let mut states: HashMap<usize, FmState> = HashMap::new();
    // Feature maps whose BCU routing entry took a *silent* strike, keyed to
    // the struck logical buffer: a later mismatch on one of these is
    // reported as a misroute with the travel distance.
    let mut bcu_strikes: HashMap<usize, usize> = HashMap::new();
    // The network input starts fully in DRAM.
    states.insert(
        0,
        FmState {
            total: golden[0].shape().len() as u64,
            resident: Vec::new(),
            dram: golden[0].as_slice().to_vec(),
        },
    );

    for event in &run.trace.events {
        match *event {
            TraceEvent::Produce {
                fm,
                total_elems,
                resident_elems,
                dram_elems,
            } => {
                // Re-evaluate the layer from reconstructed operands only.
                let layer = &net.layers()[fm];
                let mut operands: Vec<Tensor> = Vec::new();
                for &input in &layer.inputs {
                    let st = states
                        .get(&input.index())
                        .ok_or(CheckError::UnknownFm(input.index()))?;
                    let data = st.reconstruct(input.index())?;
                    let t = Tensor::from_vec(net.layer(input).out_shape, data)
                        .expect("reconstruction has full length");
                    let diff = t.max_abs_diff(&golden[input.index()]).expect("same shapes");
                    if diff != 0.0 {
                        return Err(mismatch_diag(
                            net,
                            input.index(),
                            fm,
                            &t,
                            &golden[input.index()],
                            &bcu_strikes,
                        ));
                    }
                    operands.push(t);
                }
                let refs: Vec<&Tensor> = operands.iter().collect();
                let out = exec
                    .eval(LayerId(fm), &refs)
                    .expect("evaluation of a built layer");
                let diff = out.max_abs_diff(&golden[fm]).expect("same shapes");
                if diff != 0.0 {
                    return Err(value_mismatch(net, fm, &out, &golden[fm]));
                }

                let values = golden[fm].as_slice();
                debug_assert_eq!(values.len() as u64, total_elems);
                let st = FmState {
                    total: total_elems,
                    resident: values[..resident_elems as usize].to_vec(),
                    dram: values[(total_elems - dram_elems) as usize..].to_vec(),
                };
                if st.covered() < st.total {
                    return Err(CheckError::CoverageHole {
                        fm,
                        covered: st.covered(),
                        total: st.total,
                    });
                }
                states.insert(fm, st);
            }
            TraceEvent::Spill {
                fm,
                new_resident_elems,
            } => {
                let st = states.get_mut(&fm).ok_or(CheckError::UnknownFm(fm))?;
                let full = st.reconstruct(fm)?;
                let new_cov = st
                    .dram
                    .len()
                    .max(st.total as usize - new_resident_elems as usize);
                st.dram = full[st.total as usize - new_cov..].to_vec();
                st.resident.truncate(new_resident_elems as usize);
            }
            TraceEvent::FetchMissing { fm, elems, .. } => {
                let st = states.get(&fm).ok_or(CheckError::UnknownFm(fm))?;
                if (st.dram.len() as u64) < elems {
                    return Err(CheckError::FetchBeyondDram {
                        fm,
                        requested: elems,
                        available: st.dram.len() as u64,
                    });
                }
            }
            // Values are retained after Free so junction take-overs (which
            // free the operand entry before producing the output) can still
            // reconstruct; the accounting checks above remain strict.
            TraceEvent::Free { .. } => {}
            // A silent site strike corrupts the layer's output wherever it
            // currently lives; detected/corrected strikes leave values
            // intact, which is exactly what this replay verifies. A silent
            // BCU strike additionally remembers the struck routing entry
            // so a later mismatch names the buffer and travel distance.
            TraceEvent::Fault {
                layer,
                site,
                outcome,
                ..
            } => {
                if outcome == FaultOutcome::Silent {
                    // A scheduler-state strike never touches tensor values,
                    // so the value-corruption model below would be wrong for
                    // it; the boundary consistency hash catches the metadata
                    // mismatch instead, and the replay stops trusting the
                    // schedule right there.
                    if let FaultSite::Scheduler { structure } = site {
                        return Err(CheckError::SchedulerCorrupt { layer, structure });
                    }
                    if let FaultSite::BcuTable { buffer } = site {
                        bcu_strikes.insert(layer, buffer);
                    }
                    let st = states.get_mut(&layer).ok_or(CheckError::UnknownFm(layer))?;
                    let slot = st.resident.first_mut().or_else(|| st.dram.first_mut());
                    if let Some(v) = slot {
                        // Flip a mantissa bit: changes any finite value.
                        *v = f32::from_bits(v.to_bits() ^ 0x0040_0000);
                    }
                }
            }
            // A recovery leaves values intact by construction — the DUE it
            // repairs never corrupted data, only availability.
            TraceEvent::Recovery { .. } => {}
        }
    }

    // Every produced feature map must be reconstructible at the end of the
    // events affecting it (terminal outputs in particular).
    let last = net.layers().last().expect("non-empty network");
    let st = states
        .get(&last.id.index())
        .ok_or(CheckError::UnknownFm(last.id.index()))?;
    let data = st.reconstruct(last.id.index())?;
    let out = Tensor::from_vec(last.out_shape, data).expect("full length");
    let diff = out
        .max_abs_diff(golden.last().expect("non-empty"))
        .expect("same shapes");
    if diff != 0.0 {
        return Err(mismatch_diag(
            net,
            last.id.index(),
            last.id.index(),
            &out,
            golden.last().expect("non-empty"),
            &bcu_strikes,
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_model::zoo;

    #[test]
    fn full_policy_preserves_values_on_tiny_networks() {
        let cfg = AccelConfig::default();
        for net in [
            zoo::toy_residual(1),
            zoo::resnet_tiny(2, 1),
            zoo::squeezenet_tiny(1),
            zoo::chain_tiny(4, 1),
            zoo::mobilenet_tiny(1),
            zoo::densenet_tiny(3, 1),
        ] {
            verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 7)
                .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        }
    }

    #[test]
    fn every_ablation_policy_preserves_values() {
        let cfg = AccelConfig::default();
        let net = zoo::resnet_tiny(2, 1);
        for policy in [
            Policy::shortcut_mining(),
            Policy::swap_only(),
            Policy::mining_only(),
            Policy::reuse_disabled(),
            Policy::shortcut_mining().with_swap_by_copy(),
            Policy::shortcut_mining().with_adaptive_tiling(),
        ] {
            verify_value_preservation(&net, cfg, policy, 3)
                .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
        }
    }

    #[test]
    fn preservation_holds_under_heavy_capacity_pressure() {
        // A pool so small that spills are forced throughout.
        let cfg = AccelConfig::default().with_fm_capacity(8 << 10);
        for net in [
            zoo::toy_residual(1),
            zoo::resnet_tiny(2, 1),
            zoo::squeezenet_tiny(1),
        ] {
            verify_value_preservation(&net, cfg, Policy::shortcut_mining(), 11)
                .unwrap_or_else(|e| panic!("{}: {e}", net.name()));
        }
    }

    #[test]
    fn silent_pe_fault_is_caught_and_localized() {
        use crate::{FaultPlan, Protection};
        // Every compute layer takes a silent PE-lane strike; the checker
        // must flag the first corrupted feature map and localize it to a
        // real layer and an element coordinate.
        let net = zoo::resnet_tiny(2, 1);
        let plan = FaultPlan::new(3).with_pe_faults(1.0, Protection::None);
        let err = verify_value_preservation_with(
            &net,
            AccelConfig::default(),
            Policy::shortcut_mining(),
            7,
            &SimOptions::with_faults(plan),
        )
        .expect_err("an unprotected PE fault must not pass value replay");
        match &err {
            CheckError::ValueMismatch {
                fm, layer, coord, ..
            } => {
                assert!(
                    net.layer_by_name(layer).is_some(),
                    "diagnostic names an unknown layer `{layer}`"
                );
                assert_eq!(net.layers()[*fm].name, *layer);
                let s = net.layers()[*fm].out_shape;
                assert!(coord[0] < s.n && coord[1] < s.c && coord[2] < s.h && coord[3] < s.w);
            }
            other => panic!("expected a value mismatch, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("layer `"), "no layer in diagnostic: {msg}");
        assert!(msg.contains("element [n="), "no tile in diagnostic: {msg}");
    }

    #[test]
    fn silent_bcu_misroute_is_caught_and_names_buffer_and_distance() {
        use crate::{FaultPlan, Protection};
        // Every output-allocating layer's mapping entry is struck with no
        // protection: the replay must flag the corruption as a misroute,
        // naming the logical buffer and how far downstream it surfaced.
        let net = zoo::resnet_tiny(2, 1);
        let plan = FaultPlan::new(3).with_bcu_faults(1.0, Protection::None);
        let err = verify_value_preservation_with(
            &net,
            AccelConfig::default(),
            Policy::shortcut_mining(),
            7,
            &SimOptions::with_faults(plan),
        )
        .expect_err("an unprotected BCU strike must not pass value replay");
        match &err {
            CheckError::BcuMisroute {
                fm,
                layer,
                distance,
                ..
            } => {
                assert_eq!(net.layers()[*fm].name, *layer);
                assert!(*distance >= 1, "a consumer observes the misroute");
            }
            other => panic!("expected a BCU misroute, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("logical buffer"), "no buffer in: {msg}");
        assert!(msg.contains("downstream"), "no distance in: {msg}");
    }

    #[test]
    fn bcu_parity_and_ecc_preserve_values() {
        use crate::{FaultPlan, Protection, RecoveryPolicy};
        // Detected (parity), corrected (single-bit ECC), and recovered
        // (multi-bit ECC under either repair policy) table strikes all
        // leave values intact.
        let net = zoo::resnet_tiny(2, 1);
        let plans = [
            FaultPlan::new(11).with_bcu_faults(1.0, Protection::Parity),
            FaultPlan::new(11).with_bcu_faults(1.0, Protection::Ecc),
            FaultPlan::new(11)
                .with_bcu_faults(1.0, Protection::Ecc)
                .with_multi_bit(1.0, 0.0)
                .with_recovery(RecoveryPolicy::RefetchTile),
            FaultPlan::new(11)
                .with_bcu_faults(1.0, Protection::Ecc)
                .with_multi_bit(1.0, 0.0)
                .with_recovery(RecoveryPolicy::RecomputeLayer),
        ];
        for plan in plans {
            verify_value_preservation_with(
                &net,
                AccelConfig::default(),
                Policy::shortcut_mining(),
                5,
                &SimOptions::with_faults(plan.clone()),
            )
            .unwrap_or_else(|e| panic!("{plan:?}: {e}"));
        }
    }

    #[test]
    fn protected_site_faults_preserve_values() {
        use crate::{FaultPlan, Protection};
        // Parity repairs by refetch/recompute and ECC corrects in place:
        // either way the replay must hold bit-exactly.
        let net = zoo::resnet_tiny(2, 1);
        for protection in [Protection::Parity, Protection::Ecc] {
            let plan = FaultPlan::new(11)
                .with_weight_faults(0.8, protection)
                .with_pe_faults(0.8, protection);
            verify_value_preservation_with(
                &net,
                AccelConfig::default(),
                Policy::shortcut_mining(),
                5,
                &SimOptions::with_faults(plan),
            )
            .unwrap_or_else(|e| panic!("{protection:?}: {e}"));
        }
    }

    #[test]
    fn silent_scheduler_strike_is_caught_by_the_consistency_hash() {
        use crate::{FaultPlan, Protection};
        // Every boundary strikes unprotected scheduler state: the replay
        // must stop at the first silent strike with the typed diagnostic
        // (values are intact, but the metadata hash no longer matches).
        let net = zoo::resnet_tiny(2, 1);
        let plan = FaultPlan::new(3).with_scheduler_faults(1.0, Protection::None);
        let err = verify_value_preservation_with(
            &net,
            AccelConfig::default(),
            Policy::shortcut_mining(),
            7,
            &SimOptions::with_faults(plan),
        )
        .expect_err("a silent scheduler strike must fail checked replay");
        match &err {
            CheckError::SchedulerCorrupt { layer, .. } => {
                assert!(*layer >= 1 && *layer < net.len());
            }
            other => panic!("expected scheduler corruption, got {other}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("consistency hash"), "no hash in: {msg}");
        assert!(msg.contains("scheduler"), "no structure in: {msg}");
    }

    #[test]
    fn protected_scheduler_faults_preserve_values() {
        use crate::{FaultPlan, Protection, RecoveryPolicy};
        // Parity rebuilds from shadow state, ECC corrects single-bit
        // strikes, and checkpoint rollback repairs double-bit DUEs: values
        // hold bit-exactly in every case.
        let net = zoo::resnet_tiny(2, 1);
        let plans = [
            FaultPlan::new(11).with_scheduler_faults(1.0, Protection::Parity),
            FaultPlan::new(11).with_scheduler_faults(1.0, Protection::Ecc),
            FaultPlan::new(11)
                .with_scheduler_faults(1.0, Protection::Ecc)
                .with_multi_bit(1.0, 0.0)
                .with_recovery(RecoveryPolicy::Checkpoint),
            FaultPlan::new(11)
                .with_scheduler_faults(1.0, Protection::Ecc)
                .with_multi_bit(1.0, 0.0)
                .with_recovery(RecoveryPolicy::RecomputeLayer),
        ];
        for plan in plans {
            verify_value_preservation_with(
                &net,
                AccelConfig::default(),
                Policy::shortcut_mining(),
                5,
                &SimOptions::with_faults(plan.clone()),
            )
            .unwrap_or_else(|e| panic!("{plan:?}: {e}"));
        }
    }

    #[test]
    fn preservation_holds_at_batch_two() {
        let cfg = AccelConfig::default();
        verify_value_preservation(&cfg_net(2), cfg, Policy::shortcut_mining(), 5).unwrap();
    }

    fn cfg_net(batch: usize) -> sm_model::Network {
        zoo::squeezenet_tiny(batch)
    }
}
