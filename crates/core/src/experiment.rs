use serde::Serialize;

use sm_accel::{AccelConfig, BaselineAccelerator, RunStats};
use sm_mem::EnergyModel;
use sm_model::Network;

use crate::{Policy, ShortcutMiner, SimError, SimOptions, SmRun};

/// One-call comparison harness: runs a network under any [`Policy`] on a
/// shared hardware configuration, dispatching to the baseline accelerator or
/// the Shortcut Mining simulator as appropriate.
///
/// # Example
///
/// ```
/// use sm_core::Experiment;
/// use sm_model::zoo;
///
/// let cmp = Experiment::default_config().compare(&zoo::resnet34(1));
/// assert!(cmp.traffic_reduction() > 0.0);
/// assert!(cmp.speedup() >= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Experiment {
    config: AccelConfig,
}

impl Experiment {
    /// Creates a harness over an explicit hardware configuration.
    pub fn new(config: AccelConfig) -> Self {
        Experiment { config }
    }

    /// Creates a harness over [`AccelConfig::default`] — the paper-like
    /// FPGA-class configuration.
    pub fn default_config() -> Self {
        Experiment::new(AccelConfig::default())
    }

    /// The hardware configuration in use.
    pub fn config(&self) -> AccelConfig {
        self.config
    }

    /// Runs `net` under `policy`.
    pub fn run(&self, net: &Network, policy: Policy) -> RunStats {
        if policy.logical_buffers {
            ShortcutMiner::new(self.config, policy).simulate(net).stats
        } else {
            BaselineAccelerator::new(self.config).simulate(net)
        }
    }

    /// Runs `net` under a logical-buffer policy, returning the trace and
    /// retention records as well.
    ///
    /// # Panics
    ///
    /// Panics when `policy` is the baseline (no trace exists for it).
    pub fn run_traced(&self, net: &Network, policy: Policy) -> SmRun {
        ShortcutMiner::new(self.config, policy).simulate(net)
    }

    /// Runs `net` under a logical-buffer policy with explicit
    /// [`SimOptions`] — checked-mode invariants and/or a fault plan —
    /// returning a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulation (retry budget
    /// exhausted, invariant violation, buffer misuse).
    pub fn run_checked(
        &self,
        net: &Network,
        policy: Policy,
        options: &SimOptions,
    ) -> Result<SmRun, SimError> {
        ShortcutMiner::new(self.config, policy).try_simulate(net, options)
    }

    /// Runs the paper's headline comparison: baseline vs full Shortcut
    /// Mining.
    pub fn compare(&self, net: &Network) -> Comparison {
        Comparison {
            baseline: self.run(net, Policy::baseline()),
            mined: self.run(net, Policy::shortcut_mining()),
        }
    }
}

/// Baseline-vs-Shortcut-Mining outcome for one network.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Comparison {
    /// Conventional accelerator run.
    pub baseline: RunStats,
    /// Shortcut Mining run.
    pub mined: RunStats,
}

impl Comparison {
    /// Off-chip feature-map traffic reduction in `[0, 1]` — the metric the
    /// abstract reports as 53.3% / 58% / 43%.
    pub fn traffic_reduction(&self) -> f64 {
        1.0 - self.mined.fm_traffic_ratio(&self.baseline)
    }

    /// Throughput gain of Shortcut Mining over the baseline (the abstract's
    /// 1.93×).
    pub fn speedup(&self) -> f64 {
        self.mined.speedup_over(&self.baseline)
    }

    /// Total-energy reduction in `[0, 1]` under an energy model.
    pub fn energy_reduction(&self, model: &EnergyModel) -> f64 {
        let base = self.baseline.energy(model).total_pj();
        let mined = self.mined.energy(model).total_pj();
        1.0 - mined / base.max(f64::MIN_POSITIVE)
    }

    /// DRAM-only energy reduction in `[0, 1]`.
    pub fn dram_energy_reduction(&self, model: &EnergyModel) -> f64 {
        let base = model.dram_energy_pj(self.baseline.total_traffic_bytes());
        let mined = model.dram_energy_pj(self.mined.total_traffic_bytes());
        1.0 - mined / base.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_model::zoo;

    #[test]
    fn compare_produces_consistent_labels() {
        let cmp = Experiment::default_config().compare(&zoo::toy_residual(1));
        assert_eq!(cmp.baseline.architecture, "baseline");
        assert_eq!(cmp.mined.architecture, "shortcut-mining");
        assert!(cmp.traffic_reduction() > 0.0);
    }

    #[test]
    fn energy_reduction_follows_traffic() {
        let cmp = Experiment::default_config().compare(&zoo::resnet_tiny(2, 1));
        let model = EnergyModel::default();
        assert!(cmp.dram_energy_reduction(&model) > 0.0);
        assert!(cmp.energy_reduction(&model) > 0.0);
    }

    #[test]
    fn run_dispatches_on_policy() {
        let exp = Experiment::default_config();
        let net = zoo::toy_residual(1);
        assert_eq!(exp.run(&net, Policy::baseline()).architecture, "baseline");
        assert_eq!(exp.run(&net, Policy::swap_only()).architecture, "swap-only");
        let traced = exp.run_traced(&net, Policy::shortcut_mining());
        assert!(!traced.trace.events.is_empty());
    }
}
