//! Shortcut Mining — the paper's contribution.
//!
//! This crate implements the logical-buffer procedure sequence that reuses
//! both shortcut and non-shortcut feature maps across layer boundaries:
//!
//! 1. **Prefetch** — only the non-resident portion of each operand is
//!    fetched from DRAM; resident prefixes are consumed in place.
//! 2. **Out–in swapping** — at a layer boundary the logical output buffer is
//!    relabelled as the next layer's input buffer (O(1), no copy), so the
//!    resident part of the output never round-trips through DRAM.
//! 3. **Shortcut storing** — when a feature map has a non-adjacent consumer
//!    (a residual junction, a fire-module fork, a projection), its banks are
//!    pinned as a shortcut logical buffer.
//! 4. **Shortcut reusing** — junctions consume pinned banks directly;
//!    element-wise additions take over the residual operand's banks in
//!    place, and concatenations absorb their operands' banks.
//! 5. **Bank reclaim** — under capacity pressure, pinned shortcut banks are
//!    spilled one at a time (write once, read once at the junction — never
//!    worse than the baseline's write-once-read-twice).
//!
//! The pinned data survives *any* number of intermediate layers without
//! dedicated buffer resources: intermediate layers allocate from the free
//! pool first and trigger spills only when the pool runs dry.
//!
//! Entry points:
//!
//! * [`ShortcutMiner`] — the simulator implementing the procedures.
//! * [`Policy`] — which procedures are active (for the ablation studies).
//! * [`Experiment`] — one-call comparison harness producing the paper's
//!   metrics (traffic reduction, speedup, energy).
//! * [`functional`] — the value-preservation checker: replays a simulated
//!   schedule at value level and proves outputs are bit-identical to the
//!   golden model.
//! * [`analysis`] — capacity planning: liveness lower bounds, ideal
//!   (topology-limited) reduction, and the smallest pool reaching a target
//!   fraction of it.
//! * [`Trace::check_well_formed`] — structural validation of any run's
//!   residency event stream.
//!
//! # Example
//!
//! ```
//! use sm_core::{Experiment, Policy};
//! use sm_model::zoo;
//!
//! let net = zoo::resnet34(1);
//! let exp = Experiment::default_config();
//! let baseline = exp.run(&net, Policy::baseline());
//! let mined = exp.run(&net, Policy::shortcut_mining());
//! let reduction = 1.0 - mined.fm_traffic_ratio(&baseline);
//! assert!(reduction > 0.3, "got {reduction}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod experiment;
mod fault;
mod policy;
mod simulator;
mod trace;

pub mod analysis;
pub mod functional;
pub mod hash;
pub mod parallel;

pub use error::SimError;
pub use experiment::{Comparison, Experiment};
pub use fault::{
    FaultInjector, FaultPlan, Protection, RecoveryBudget, RecoveryPolicy, SchedulerFaultDraw,
    SiteFaultDraw, StrikeWidth,
};
pub use policy::{AllocPriority, Policy, SpillOrder};
pub use simulator::{ShortcutMiner, SimOptions, SmRun};
pub use trace::{
    FaultOutcome, FaultSite, RecoveryAction, RetentionRecord, SchedStructure, Trace, TraceEvent,
};
