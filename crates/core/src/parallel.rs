//! Deterministic parallel execution for independent work items.
//!
//! Every sweep in the evaluation pipeline — capacity sweeps, batch sweeps,
//! chaos degradation curves, the headline comparisons — runs many
//! *independent, deterministic* simulations. [`par_map`] fans those out over
//! a scoped worker pool (`std::thread::scope`, no external dependency) while
//! **preserving input order**: the result vector is index-for-index what the
//! serial loop would produce, so parallel output is byte-identical to serial
//! output and the thread count is purely a wall-clock knob.
//!
//! The thread count resolves in priority order:
//!
//! 1. an explicit `--threads <n>` flag, applied via [`set_threads`] (the
//!    [`parse_threads_flag`] helper strips it from an argv for the
//!    binaries);
//! 2. the `SM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Work is distributed dynamically (an atomic next-item counter), so skewed
//! item costs — ResNet-152 next to SqueezeNet — still balance. When a cost
//! estimate is available up front (network MAC counts), [`par_map_weighted`]
//! instead assigns items largest-first by a static greedy schedule, which
//! bounds the makespan without sacrificing byte-identity.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`threads`] (the `--threads`
/// flag of the binaries lands here). `None` or `Some(0)` clears the
/// override.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel sweeps use: the [`set_threads`] override if
/// set, else `SM_THREADS` if parseable and non-zero, else the machine's
/// available parallelism (1 when even that is unknown).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `SM_THREADS` as a positive worker count, when set and well-formed.
fn env_threads() -> Option<usize> {
    std::env::var("SM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Strips `--threads <n>` from an argument list, returning the parsed count.
///
/// Shared by `smctl` and the figure binaries so every entry point spells the
/// flag the same way. The flag may appear anywhere; the last occurrence
/// wins.
///
/// # Errors
///
/// Returns a user-facing message when the value is missing or not a
/// positive integer.
pub fn parse_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut parsed = None;
    while let Some(pos) = args.iter().position(|a| a == "--threads") {
        if pos + 1 >= args.len() {
            return Err("--threads requires a value".into());
        }
        let value = args[pos + 1].clone();
        let n: usize =
            value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("invalid thread count {value:?} (positive integer expected)")
            })?;
        args.drain(pos..pos + 2);
        parsed = Some(n);
    }
    Ok(parsed)
}

/// Maps `f` over `items` on `threads` scoped workers, preserving order.
///
/// The output is exactly `items.iter().map(f).collect()` — workers claim
/// items through an atomic counter and tag each result with its index, so
/// scheduling nondeterminism never reaches the caller. With `threads <= 1`
/// (or one item) the call degenerates to the serial loop, no threads
/// spawned.
///
/// # Example
///
/// ```
/// use sm_core::parallel::par_map;
///
/// let xs = vec![3u64, 1, 4, 1, 5];
/// assert_eq!(par_map(&xs, 4, |x| x * 2), vec![6, 2, 8, 2, 10]);
/// ```
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    mine.push((i, f(&items[i])));
                }
                mine
            }));
        }
        for handle in handles {
            tagged.extend(handle.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map`] at the configured worker count ([`threads`]).
pub fn par_map_auto<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map(items, threads(), f)
}

/// Cost-aware [`par_map`]: dispatches the most expensive items first so a
/// skewed batch (ResNet-152 next to SqueezeNet) never strands one worker on
/// the big item while the others idle.
///
/// `cost` is an *estimate* (e.g. a network's MAC count) consulted once per
/// item up front. Items are assigned to workers by static greedy
/// longest-processing-time scheduling: walk the items in descending
/// estimated cost (ties broken by ascending index) and give each to the
/// worker with the smallest assigned load so far (ties broken by lowest
/// worker id). The assignment is a pure function of `(costs, threads)` —
/// no racy work-stealing — and each worker runs its queue in that fixed
/// order, so for a deterministic `f` the output is exactly
/// `items.iter().map(f).collect()` at every thread count: order-preserved
/// and byte-identical. The thread count and cost function are purely
/// wall-clock knobs.
///
/// # Example
///
/// ```
/// use sm_core::parallel::{par_map, par_map_weighted};
///
/// let xs = vec![3u64, 100, 4, 1, 5];
/// let weighted = par_map_weighted(&xs, 4, |&x| x, |x| x * 2);
/// assert_eq!(weighted, par_map(&xs, 4, |x| x * 2));
/// ```
pub fn par_map_weighted<T, U, F, C>(items: &[T], threads: usize, cost: C, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
    C: Fn(&T) -> u64,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    // Descending estimated cost, index ascending on ties: the schedule
    // depends only on the costs, never on timing.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cost(&items[i])), i));

    // Static greedy LPT assignment to the least-loaded worker.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads = vec![0u64; workers];
    for &i in &order {
        let w = (0..workers)
            .min_by_key(|&w| (loads[w], w))
            .expect("workers > 0");
        loads[w] = loads[w].saturating_add(cost(&items[i]).max(1));
        queues[w].push(i);
    }

    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for queue in &queues {
            handles.push(scope.spawn(|| {
                queue
                    .iter()
                    .map(|&i| (i, f(&items[i])))
                    .collect::<Vec<(usize, U)>>()
            }));
        }
        for handle in handles {
            tagged.extend(handle.join().expect("weighted sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Shared cancellation predicate consulted between work items by the
/// `*_cancellable` dispatch variants. Returning `true` asks the dispatch to
/// stop before the next item; items already running complete normally, so
/// cancellation lands on item boundaries (cell granularity for the sweep
/// service's deadlines).
pub type CancelCheck<'a> = &'a (dyn Fn() -> bool + Sync);

/// Typed "the dispatch was cancelled" error returned by the
/// `*_cancellable` variants when their [`CancelCheck`] fired before every
/// item completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dispatch cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// [`par_map_weighted`] that additionally streams each result to `on_ready`
/// **in input order** as soon as the contiguous prefix up to it has
/// completed — the dispatch behind the resident sweep service, which emits
/// a JSON line per finished cell while later cells are still running.
///
/// Work assignment is the same static greedy LPT schedule as
/// [`par_map_weighted`], so the returned vector is byte-identical to the
/// serial `items.iter().map(f).collect()` at every thread count, and
/// `on_ready(i, &result[i])` fires exactly once per item with `i` strictly
/// ascending. `on_ready` runs on the calling thread; workers hand results
/// over a channel rather than invoking the callback themselves, so the
/// callback needs no synchronization and observes results in order even
/// when items complete out of order.
pub fn par_map_weighted_stream<T, U, F, C, G>(
    items: &[T],
    threads: usize,
    cost: C,
    f: F,
    on_ready: G,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
    C: Fn(&T) -> u64,
    G: FnMut(usize, &U),
{
    par_map_weighted_stream_cancellable(items, threads, cost, f, on_ready, None)
        .expect("a dispatch without a cancel source cannot be cancelled")
}

/// [`par_map_weighted_stream`] with cooperative cancellation: workers
/// consult `cancel` before starting each item and stop claiming new work
/// once it returns `true`. Results (and `on_ready` calls) for the
/// contiguous in-order prefix that completed are still delivered; if any
/// item was abandoned the call returns [`Cancelled`] instead of a result
/// vector.
///
/// With `cancel = None` — or a check that never fires — the behavior and
/// output are exactly [`par_map_weighted_stream`]: same static LPT
/// schedule, byte-identical to serial at every thread count. Cancellation
/// is best-effort on item boundaries: items already executing run to
/// completion, and a check that first returns `true` after the last item
/// was claimed yields `Ok` rather than `Err`.
pub fn par_map_weighted_stream_cancellable<T, U, F, C, G>(
    items: &[T],
    threads: usize,
    cost: C,
    f: F,
    mut on_ready: G,
    cancel: Option<CancelCheck<'_>>,
) -> Result<Vec<U>, Cancelled>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
    C: Fn(&T) -> u64,
    G: FnMut(usize, &U),
{
    let cancelled = || cancel.is_some_and(|c| c());
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if cancelled() {
                return Err(Cancelled);
            }
            let u = f(item);
            on_ready(i, &u);
            out.push(u);
        }
        return Ok(out);
    }

    // The same deterministic LPT assignment as par_map_weighted.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(cost(&items[i])), i));
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut loads = vec![0u64; workers];
    for &i in &order {
        let w = (0..workers)
            .min_by_key(|&w| (loads[w], w))
            .expect("workers > 0");
        loads[w] = loads[w].saturating_add(cost(&items[i]).max(1));
        queues[w].push(i);
    }

    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let mut delivered = 0usize;
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, U)>();
        let f = &f;
        let cancelled = &cancelled;
        for queue in &queues {
            let tx = tx.clone();
            scope.spawn(move || {
                for &i in queue {
                    if cancelled() {
                        break;
                    }
                    // A send only fails when the receiver is gone, which
                    // only happens if this scope is already unwinding.
                    let _ = tx.send((i, f(&items[i])));
                }
            });
        }
        drop(tx);
        // Drain on the calling thread, emitting the in-order frontier as it
        // becomes contiguous. Under cancellation the channel closes early
        // and the frontier stops short of the end.
        let mut frontier = 0usize;
        for (i, u) in rx {
            slots[i] = Some(u);
            while frontier < slots.len() {
                match &slots[frontier] {
                    Some(u) => {
                        on_ready(frontier, u);
                        frontier += 1;
                    }
                    None => break,
                }
            }
        }
        delivered = frontier;
    });
    if slots.iter().any(|s| s.is_none()) {
        return Err(Cancelled);
    }
    debug_assert_eq!(delivered, slots.len());
    Ok(slots
        .into_iter()
        .map(|u| u.expect("stream worker completed every item"))
        .collect())
}

/// [`par_map_weighted`] at the configured worker count ([`threads`]).
pub fn par_map_weighted_auto<T, U, F, C>(items: &[T], cost: C, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
    C: Fn(&T) -> u64,
{
    par_map_weighted(items, threads(), cost, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            assert_eq!(par_map(&items, threads, |x| x * x), expect, "{threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_items_still_land_in_slot_order() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 10
        });
        assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_map_is_byte_identical_to_serial_under_adversarial_costs() {
        let items: Vec<u64> = (0..41).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        type CostFn = fn(&u64) -> u64;
        let costs: [(&str, CostFn); 4] = [
            ("reverse-sorted", |x: &u64| u64::MAX - *x),
            ("all-equal", |_: &u64| 7),
            ("ascending", |x: &u64| *x),
            ("zero", |_: &u64| 0),
        ];
        for (label, cost) in costs {
            for threads in [1usize, 3, 8] {
                let weighted = par_map_weighted(&items, threads, cost, |x| x * 3 + 1);
                assert_eq!(weighted, expect, "{label} at {threads} threads");
                assert_eq!(
                    weighted,
                    par_map(&items, threads, |x| x * 3 + 1),
                    "{label} at {threads} threads vs par_map"
                );
            }
        }
    }

    #[test]
    fn weighted_map_handles_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map_weighted(&none, 8, |_| 1, |x| *x).is_empty());
        assert_eq!(par_map_weighted(&[7u32], 8, |_| 1, |x| x + 1), vec![8]);
    }

    #[test]
    fn weighted_map_isolates_the_dominant_item_on_its_own_worker() {
        // With 2 workers and costs [1, 1, 10, 1, 1], greedy LPT assigns the
        // 10-cost item first (alone, since the four 1-cost items sum to 4 <
        // 10); verify by recording which thread ran each item.
        use std::sync::Mutex;
        type Claims = Vec<(std::thread::ThreadId, u64)>;
        let items: Vec<u64> = vec![1, 1, 10, 1, 1];
        let claims: Mutex<Claims> = Mutex::new(Vec::new());
        let _ = par_map_weighted(
            &items,
            2,
            |&c| c,
            |&c| {
                claims
                    .lock()
                    .unwrap()
                    .push((std::thread::current().id(), c));
                c
            },
        );
        let claims = claims.into_inner().unwrap();
        let big_thread = claims.iter().find(|(_, c)| *c == 10).unwrap().0;
        let on_big: Vec<u64> = claims
            .iter()
            .filter(|(t, _)| *t == big_thread)
            .map(|(_, c)| *c)
            .collect();
        assert_eq!(on_big, vec![10], "dominant item shares no worker");
    }

    #[test]
    fn streamed_results_arrive_in_order_and_match_par_map() {
        let items: Vec<u64> = (0..53).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 7 + 1).collect();
        for threads in [1usize, 2, 4, 16] {
            let mut seen: Vec<usize> = Vec::new();
            let out = par_map_weighted_stream(
                &items,
                threads,
                |&x| x,
                |x| x * 7 + 1,
                |i, u| {
                    assert_eq!(*u, expect[i], "value at {i}");
                    seen.push(i);
                },
            );
            assert_eq!(out, expect, "{threads} threads");
            assert_eq!(seen, (0..items.len()).collect::<Vec<_>>(), "{threads}");
        }
    }

    #[test]
    fn stream_handles_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        let mut calls = 0;
        assert!(par_map_weighted_stream(&none, 8, |_| 1, |x| *x, |_, _| calls += 1).is_empty());
        assert_eq!(calls, 0);
        let out = par_map_weighted_stream(&[7u32], 8, |_| 1, |x| x + 1, |_, _| calls += 1);
        assert_eq!((out, calls), (vec![8], 1));
    }

    #[test]
    fn stream_emits_in_order_even_when_later_items_finish_first() {
        // Item 0 is slow; the callback must still see 0 before 1..n.
        let items: Vec<u64> = (0..8).collect();
        let mut seen = Vec::new();
        par_map_weighted_stream(
            &items,
            4,
            |_| 1,
            |&x| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                x
            },
            |i, _| seen.push(i),
        );
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn cancellable_stream_without_a_source_matches_the_plain_stream() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 5 + 2).collect();
        for threads in [1usize, 2, 4] {
            let mut seen = Vec::new();
            let out = par_map_weighted_stream_cancellable(
                &items,
                threads,
                |&x| x,
                |x| x * 5 + 2,
                |i, _| seen.push(i),
                None,
            )
            .unwrap();
            assert_eq!(out, expect, "{threads} threads");
            assert_eq!(seen, (0..items.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn never_firing_cancel_check_is_byte_identical_to_uncancellable() {
        let items: Vec<u64> = (0..29).collect();
        let never = || false;
        for threads in [1usize, 3, 8] {
            let cancellable = par_map_weighted_stream_cancellable(
                &items,
                threads,
                |&x| x,
                |x| x * 9,
                |_, _| {},
                Some(&never),
            )
            .unwrap();
            let plain = par_map_weighted_stream(&items, threads, |&x| x, |x| x * 9, |_, _| {});
            assert_eq!(cancellable, plain, "{threads} threads");
        }
    }

    #[test]
    fn pre_fired_cancel_returns_cancelled_without_running_items() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..16).collect();
        let ran = AtomicUsize::new(0);
        let always = || true;
        for threads in [1usize, 4] {
            let r = par_map_weighted_stream_cancellable(
                &items,
                threads,
                |_| 1,
                |&x| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    x
                },
                |_, _| {},
                Some(&always),
            );
            assert_eq!(r, Err(Cancelled), "{threads} threads");
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no item may start");
    }

    #[test]
    fn mid_flight_cancel_stops_on_item_boundaries_and_streams_the_prefix() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..64).collect();
        let ran = AtomicUsize::new(0);
        // Fire after the fourth item starts: later items are abandoned.
        let cancel = || ran.load(Ordering::Relaxed) >= 4;
        let mut seen = Vec::new();
        let r = par_map_weighted_stream_cancellable(
            &items,
            2,
            |_| 1,
            |&x| {
                ran.fetch_add(1, Ordering::Relaxed);
                x
            },
            |i, _| seen.push(i),
            Some(&cancel),
        );
        assert_eq!(r, Err(Cancelled));
        assert!(
            ran.load(Ordering::Relaxed) < items.len(),
            "cancellation must abandon the tail"
        );
        // The streamed prefix is contiguous from zero.
        assert_eq!(seen, (0..seen.len()).collect::<Vec<_>>());
    }

    #[test]
    fn threads_flag_parses_and_strips() {
        let mut args: Vec<String> = ["chaos", "--threads", "4", "toy_residual"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_threads_flag(&mut args), Ok(Some(4)));
        assert_eq!(args, ["chaos", "toy_residual"]);

        let mut none: Vec<String> = vec!["networks".into()];
        assert_eq!(parse_threads_flag(&mut none), Ok(None));

        let mut bad: Vec<String> = vec!["--threads".into(), "zero?".into()];
        assert!(parse_threads_flag(&mut bad).is_err());
        let mut missing: Vec<String> = vec!["--threads".into()];
        assert!(parse_threads_flag(&mut missing).is_err());

        let mut twice: Vec<String> = ["--threads", "2", "--threads", "6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_threads_flag(&mut twice), Ok(Some(6)));
        assert!(twice.is_empty());
    }

    #[test]
    fn thread_count_resolution_is_sane() {
        // Whatever the environment, the resolved count is positive.
        assert!(threads() >= 1);
    }
}
