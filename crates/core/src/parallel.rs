//! Deterministic parallel execution for independent work items.
//!
//! Every sweep in the evaluation pipeline — capacity sweeps, batch sweeps,
//! chaos degradation curves, the headline comparisons — runs many
//! *independent, deterministic* simulations. [`par_map`] fans those out over
//! a scoped worker pool (`std::thread::scope`, no external dependency) while
//! **preserving input order**: the result vector is index-for-index what the
//! serial loop would produce, so parallel output is byte-identical to serial
//! output and the thread count is purely a wall-clock knob.
//!
//! The thread count resolves in priority order:
//!
//! 1. an explicit `--threads <n>` flag, applied via [`set_threads`] (the
//!    [`parse_threads_flag`] helper strips it from an argv for the
//!    binaries);
//! 2. the `SM_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Work is distributed dynamically (an atomic next-item counter), so skewed
//! item costs — ResNet-152 next to SqueezeNet — still balance.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count used by [`threads`] (the `--threads`
/// flag of the binaries lands here). `None` or `Some(0)` clears the
/// override.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// The worker count parallel sweeps use: the [`set_threads`] override if
/// set, else `SM_THREADS` if parseable and non-zero, else the machine's
/// available parallelism (1 when even that is unknown).
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// `SM_THREADS` as a positive worker count, when set and well-formed.
fn env_threads() -> Option<usize> {
    std::env::var("SM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Strips `--threads <n>` from an argument list, returning the parsed count.
///
/// Shared by `smctl` and the figure binaries so every entry point spells the
/// flag the same way. The flag may appear anywhere; the last occurrence
/// wins.
///
/// # Errors
///
/// Returns a user-facing message when the value is missing or not a
/// positive integer.
pub fn parse_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut parsed = None;
    while let Some(pos) = args.iter().position(|a| a == "--threads") {
        if pos + 1 >= args.len() {
            return Err("--threads requires a value".into());
        }
        let value = args[pos + 1].clone();
        let n: usize =
            value.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("invalid thread count {value:?} (positive integer expected)")
            })?;
        args.drain(pos..pos + 2);
        parsed = Some(n);
    }
    Ok(parsed)
}

/// Maps `f` over `items` on `threads` scoped workers, preserving order.
///
/// The output is exactly `items.iter().map(f).collect()` — workers claim
/// items through an atomic counter and tag each result with its index, so
/// scheduling nondeterminism never reaches the caller. With `threads <= 1`
/// (or one item) the call degenerates to the serial loop, no threads
/// spawned.
///
/// # Example
///
/// ```
/// use sm_core::parallel::par_map;
///
/// let xs = vec![3u64, 1, 4, 1, 5];
/// assert_eq!(par_map(&xs, 4, |x| x * 2), vec![6, 2, 8, 2, 10]);
/// ```
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut mine: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    mine.push((i, f(&items[i])));
                }
                mine
            }));
        }
        for handle in handles {
            tagged.extend(handle.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// [`par_map`] at the configured worker count ([`threads`]).
pub fn par_map_auto<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map(items, threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_every_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 200] {
            assert_eq!(par_map(&items, threads, |x| x * x), expect, "{threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_items_still_land_in_slot_order() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 10
        });
        assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn threads_flag_parses_and_strips() {
        let mut args: Vec<String> = ["chaos", "--threads", "4", "toy_residual"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_threads_flag(&mut args), Ok(Some(4)));
        assert_eq!(args, ["chaos", "toy_residual"]);

        let mut none: Vec<String> = vec!["networks".into()];
        assert_eq!(parse_threads_flag(&mut none), Ok(None));

        let mut bad: Vec<String> = vec!["--threads".into(), "zero?".into()];
        assert!(parse_threads_flag(&mut bad).is_err());
        let mut missing: Vec<String> = vec!["--threads".into()];
        assert!(parse_threads_flag(&mut missing).is_err());

        let mut twice: Vec<String> = ["--threads", "2", "--threads", "6"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_threads_flag(&mut twice), Ok(Some(6)));
        assert!(twice.is_empty());
    }

    #[test]
    fn thread_count_resolution_is_sane() {
        // Whatever the environment, the resolved count is positive.
        assert!(threads() >= 1);
    }
}
