use std::collections::HashMap;

use serde::Serialize;

use sm_accel::cycles::{
    conv_compute_cycles, dram_cycles, ecc_check_cycles, ecc_compute_tax_cycles, fc_compute_cycles,
    vector_compute_cycles, LayerCycles,
};
use sm_accel::tiling::{plan_conv_cached, ConvDims, TileCaps, TilePlan};
use sm_accel::{
    AccelConfig, AccelError, FaultStats, LayerPerfSummary, LayerReport, Plane, RunStats,
};
use sm_buffer::{BufferRole, LogicalBufferId, LogicalBuffers, Revocation};
use sm_mem::{ClassTotals, DramModel, Ledger, TrafficClass};
use sm_model::{Layer, LayerId, LayerKind, Network};

use crate::{
    FaultInjector, FaultOutcome, FaultPlan, FaultSite, Policy, Protection, RecoveryAction,
    RecoveryPolicy, RetentionRecord, SchedStructure, SimError, SpillOrder, StrikeWidth, Trace,
    TraceEvent,
};

/// SRAM-to-SRAM copy bandwidth in bytes per cycle, charged only under the
/// `swap_by_copy` ablation (a wide on-chip bus moving one buffer's contents
/// into another instead of relabelling).
const COPY_BYTES_PER_CYCLE: u64 = 128;

/// Concurrently live logical buffers the BCU mapping table is sized for
/// (matches the overhead analysis in `sm_buffer::bcu`); fixes the table
/// footprint an ECC scrub walks each layer.
const BCU_TABLE_BUFFERS: u64 = 8;

/// Result of a Shortcut Mining simulation: the run statistics plus the
/// residency trace and the per-shortcut retention records.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SmRun {
    /// Traffic / cycle statistics (same shape as the baseline's).
    pub stats: RunStats,
    /// Residency event trace (consumed by the functional checker).
    pub trace: Trace,
    /// Survival of each shortcut at its junction.
    pub retention: Vec<RetentionRecord>,
}

/// Where one feature map currently lives.
#[derive(Debug, Clone)]
struct Resident {
    buffer: Option<LogicalBufferId>,
    total_elems: u64,
    /// On-chip prefix.
    resident_elems: u64,
    /// Elements valid in DRAM as a suffix `[total - dram_suffix, total)`.
    dram_suffix_elems: u64,
    /// Portion of the suffix that was evicted after production (its re-read
    /// is classified as spill traffic).
    spilled_elems: u64,
    remaining_consumers: usize,
}

impl Resident {
    /// Elements only reachable from DRAM. Saturating with a debug assert:
    /// residency above the total is an accounting bug, not a valid state.
    fn missing_elems(&self) -> u64 {
        debug_assert!(
            self.resident_elems <= self.total_elems,
            "resident {} exceeds total {}",
            self.resident_elems,
            self.total_elems
        );
        self.total_elems.saturating_sub(self.resident_elems)
    }
}

/// Layer-boundary snapshot of scheduler metadata: the retention table,
/// bank labels and pin set — metadata only, no tensor payloads, so the
/// snapshot is a few hundred bytes and costs nothing to take. A
/// `RecoveryPolicy::Checkpoint` DUE rolls back to the last snapshot and
/// replays forward, serving every operand that was resident at the
/// boundary from chip.
#[derive(Debug, Clone)]
struct SchedCheckpoint {
    /// Boundary (layer index) the snapshot was taken at.
    layer: usize,
    /// One entry per live feature map, in fm order:
    /// `(fm, resident_elems, dram_suffix_elems, spilled_elems, pinned)`.
    entries: Vec<(usize, u64, u64, u64, bool)>,
    /// FNV-1a consistency hash over the entries; rollback re-hashes and
    /// refuses a mismatching snapshot (falling back to recompute) so a
    /// corrupted checkpoint is never restored.
    hash: u64,
}

/// FNV-1a over a checkpoint's metadata entries — the cheap consistency
/// hash checked before any rollback.
fn checkpoint_hash(entries: &[(usize, u64, u64, u64, bool)]) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = BASIS;
    for &(fm, resident, suffix, spilled, pinned) in entries {
        for word in [fm as u64, resident, suffix, spilled, pinned as u64] {
            for b in word.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        }
    }
    h
}

/// Recovery work already performed this run, checked against the plan's
/// [`crate::RecoveryBudget`] to decide when a tier escalates.
#[derive(Debug, Clone, Copy, Default)]
struct BudgetUse {
    refetches: u32,
    recomputes: u32,
    rollbacks: u32,
}

/// Options controlling one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimOptions {
    /// Run the invariant checker after every layer, turning internal
    /// accounting violations into [`SimError::Invariant`].
    pub checked: bool,
    /// Fault plan to inject; `None` (or an inactive plan) runs fault-free.
    pub faults: Option<FaultPlan>,
}

impl SimOptions {
    /// Checked mode without fault injection.
    pub fn checked() -> Self {
        SimOptions {
            checked: true,
            faults: None,
        }
    }

    /// Checked mode with the given fault plan.
    pub fn with_faults(plan: FaultPlan) -> Self {
        SimOptions {
            checked: true,
            faults: Some(plan),
        }
    }
}

/// The Shortcut Mining accelerator simulator.
///
/// Executes a network under a [`Policy`] over the logical-buffer pool of an
/// [`AccelConfig`], producing the same [`RunStats`] the baseline produces
/// plus a residency [`Trace`]. Per-layer tile schedules are identical to the
/// baseline's (same planner, same capacities), so any traffic difference is
/// attributable purely to cross-layer reuse.
///
/// # Example
///
/// ```
/// use sm_accel::AccelConfig;
/// use sm_core::{Policy, ShortcutMiner};
/// use sm_model::zoo;
///
/// let miner = ShortcutMiner::new(AccelConfig::default(), Policy::shortcut_mining());
/// let run = miner.simulate(&zoo::toy_residual(1));
/// assert!(run.trace.check_well_formed().is_ok());
/// assert!(run.stats.fm_traffic_bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShortcutMiner {
    config: AccelConfig,
    policy: Policy,
}

impl ShortcutMiner {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics when the policy is [`Policy::baseline`] — use
    /// `sm_accel::BaselineAccelerator` (or the `Experiment` wrapper, which
    /// dispatches automatically) for the conventional architecture.
    pub fn new(config: AccelConfig, policy: Policy) -> Self {
        assert!(
            policy.logical_buffers,
            "ShortcutMiner requires a logical-buffer policy; use BaselineAccelerator for the baseline"
        );
        ShortcutMiner { config, policy }
    }

    /// The hardware configuration.
    pub fn config(&self) -> AccelConfig {
        self.config
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Simulates `net`, returning statistics, trace and retention records.
    ///
    /// # Panics
    ///
    /// Panics on malformed networks. Fault-free runs over well-formed
    /// networks never fail; use [`ShortcutMiner::try_simulate`] for typed
    /// errors, checked mode, and fault injection.
    pub fn simulate(&self, net: &Network) -> SmRun {
        self.try_simulate(net, &SimOptions::default())
            .expect("fault-free simulation of a well-formed network")
    }

    /// Simulates `net` under `options`, surfacing every failure — model
    /// preconditions, injected faults past their retry budget, checked-mode
    /// invariant violations — as a typed [`SimError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::Accel`] on malformed networks, [`SimError::RetryExhausted`]
    /// when an injected DRAM fault outlasts the plan's retry budget, and
    /// [`SimError::Invariant`] / [`SimError::Buffer`] when internal
    /// accounting breaks (never expected on the fault-free path).
    pub fn try_simulate(&self, net: &Network, options: &SimOptions) -> Result<SmRun, SimError> {
        Sim::new(self.config, self.policy, net, options).run()
    }
}

/// Per-run mutable state.
struct Sim<'a> {
    cfg: AccelConfig,
    policy: Policy,
    net: &'a Network,
    bufs: LogicalBuffers,
    fms: HashMap<usize, Resident>,
    ledger: Ledger,
    trace: Trace,
    retention: Vec<RetentionRecord>,
    layer_traffic: Vec<(TrafficClass, u64)>,
    copy_penalty_bytes: u64,
    checked: bool,
    injector: Option<FaultInjector>,
    faults: FaultStats,
    /// Last consistent layer-boundary snapshot of scheduler metadata;
    /// `None` until the first boundary completes, which is why a strike on
    /// the very first layer falls back to `RecomputeLayer`.
    checkpoint: Option<SchedCheckpoint>,
    /// Recovery work spent so far, compared against the plan's budgets.
    budget_used: BudgetUse,
    /// A silent spill-queue strike flipped the victim ordering: the spill
    /// engine walks its queue in reverse until the run ends. Value-safe
    /// (spills write back before dropping residency) but decision-wrong.
    spill_flip: bool,
}

impl<'a> Sim<'a> {
    fn new(cfg: AccelConfig, policy: Policy, net: &'a Network, options: &SimOptions) -> Self {
        let injector = options.faults.as_ref().filter(|p| p.is_active()).map(|p| {
            FaultInjector::new(p, cfg.sram.fm_pool.bank_count, net.len().saturating_sub(1))
        });
        let mut sim = Sim {
            cfg,
            policy,
            net,
            bufs: LogicalBuffers::new(cfg.sram.fm_pool),
            fms: HashMap::new(),
            ledger: Ledger::new(),
            trace: Trace::default(),
            retention: Vec::new(),
            layer_traffic: Vec::new(),
            copy_penalty_bytes: 0,
            checked: options.checked,
            injector,
            faults: FaultStats::default(),
            checkpoint: None,
            budget_used: BudgetUse::default(),
            spill_flip: false,
        };
        // The network input starts fully in DRAM.
        let input = net.input();
        sim.fms.insert(
            0,
            Resident {
                buffer: None,
                total_elems: input.out_elems() as u64,
                resident_elems: 0,
                dram_suffix_elems: input.out_elems() as u64,
                spilled_elems: 0,
                remaining_consumers: net.consumers(input.id).len(),
            },
        );
        sim
    }

    fn elem(&self) -> u64 {
        self.cfg.elem_bytes
    }

    /// Tile capacities — identical to the baseline's, so per-layer schedules
    /// match and only cross-layer reuse differs.
    fn tile_caps(&self) -> TileCaps {
        let fixed = self.cfg.sram.as_fixed();
        TileCaps {
            ifm_bytes: fixed.ifm_half(),
            ofm_bytes: fixed.ofm_half(),
            weight_tile_bytes: fixed.weight_half(),
            weight_total_bytes: fixed.weight_bytes,
        }
    }

    fn record(&mut self, class: TrafficClass, bytes: u64) {
        if bytes > 0 {
            self.layer_traffic.push((class, bytes));
        }
    }

    fn run(mut self) -> Result<SmRun, SimError> {
        let fm_dram = DramModel::new(self.cfg.fm_dram);
        let w_dram = DramModel::new(self.cfg.weight_dram);
        let mut layers = Vec::with_capacity(self.net.len());
        let mut total_cycles = 0u64;
        let mut total_macs = 0u64;
        let mut prev_ledger_total = 0u64;

        let all_layers: Vec<Layer> = self.net.layers()[1..].to_vec();
        for layer in &all_layers {
            self.layer_traffic.clear();
            self.copy_penalty_bytes = 0;
            // Snapshot the run-wide fault counters so this layer's share of
            // retry stalls and DUE strikes can be attributed to it by diff
            // (the injector increments the global counters in place).
            let faults_before = self.faults;
            self.apply_layer_faults(layer.id.index())?;
            let compute = self.run_layer(layer)?;

            // Drain the layer's traffic into the ledger, playing each
            // transfer through the DRAM fault model when one is active.
            // Failed attempts re-transfer the same bytes (recorded under
            // `Retry`) and stall the pipeline with linear backoff.
            let mut traffic = ClassTotals::new();
            let (mut fm_bytes, mut w_bytes) = (0u64, 0u64);
            let (mut retry_fm, mut retry_w) = (0u64, 0u64);
            let mut stall_cycles = 0u64;
            let drained = std::mem::take(&mut self.layer_traffic);
            for &(class, bytes) in &drained {
                self.ledger.record(layer.id.index(), class, bytes);
                traffic.record(class, bytes);
                if class.is_feature_map() {
                    fm_bytes += bytes;
                } else {
                    w_bytes += bytes;
                }
                if let Some(inj) = self.injector.as_mut() {
                    match inj.transfer_attempts() {
                        Ok((0, _)) => {}
                        Ok((failed, stall)) => {
                            let re = bytes.saturating_mul(failed as u64);
                            self.ledger
                                .record(layer.id.index(), TrafficClass::Retry, re);
                            traffic.record(TrafficClass::Retry, re);
                            if class.is_feature_map() {
                                retry_fm += re;
                            } else {
                                retry_w += re;
                            }
                            stall_cycles += stall;
                            self.faults.dram_retries += failed as u64;
                            self.faults.retry_stall_cycles += stall;
                        }
                        Err((attempts, _)) => {
                            return Err(SimError::RetryExhausted {
                                layer: layer.id.index(),
                                class,
                                attempts,
                            });
                        }
                    }
                }
            }
            // Weight-SRAM / PE-array / BCU-table site faults: ECC taxes
            // every protected access (including the table scrub); parity
            // repairs detected strikes by refetch, lane recompute, or
            // shadow-copy rebuild; multi-bit DUEs go through the recovery
            // policy; unprotected strikes corrupt silently and are only
            // visible to the value checker.
            let (site_compute, site_overhead, site_retry_w, site_retry_fm) =
                self.apply_site_faults(layer, compute, w_bytes, &mut traffic)?;
            retry_w += site_retry_w;
            retry_fm += site_retry_fm;
            // Scheduler-state strikes land at the layer boundary, after the
            // layer's own work is known (a rollback replays exactly it).
            let (sched_compute, sched_overhead, sched_retry_fm) =
                self.apply_scheduler_faults(layer, compute, &mut traffic)?;
            retry_fm += sched_retry_fm;

            let copy_cycles = self
                .copy_penalty_bytes
                .div_ceil(COPY_BYTES_PER_CYCLE.max(1));
            let cycles = LayerCycles::combine(
                compute + copy_cycles + site_compute + sched_compute,
                dram_cycles(&fm_dram, fm_bytes + retry_fm),
                dram_cycles(&w_dram, w_bytes + retry_w),
                self.cfg.layer_overhead + stall_cycles + site_overhead + sched_overhead,
            );
            total_cycles += cycles.total;
            let macs = layer.macs(&self.net.in_shapes(layer.id));
            total_macs += macs;
            layers.push(LayerReport {
                id: layer.id.index(),
                name: layer.name.clone(),
                kind: layer.kind.mnemonic(),
                cycles,
                traffic,
                macs,
                perf: LayerPerfSummary::from_cycles(cycles).with_faults(
                    self.faults.retry_stall_cycles - faults_before.retry_stall_cycles,
                    copy_cycles,
                    self.faults.due_events - faults_before.due_events,
                ),
            });
            debug_assert!(self.bufs.check_invariants(), "buffer invariant violated");
            if self.checked {
                self.check_layer_invariants(layer.id.index(), prev_ledger_total)?;
            }
            prev_ledger_total = self.ledger.total_bytes();
            // Snapshot the scheduler metadata at the boundary: pure
            // bookkeeping over a handful of records, so no traffic or
            // cycles are charged.
            if self.injector.is_some() {
                self.checkpoint = Some(self.take_checkpoint(layer.id.index()));
            }
        }

        let stats = RunStats {
            network: self.net.name().to_string(),
            batch: self.net.input().out_shape.n,
            architecture: self.policy.label().to_string(),
            total_cycles,
            macs: total_macs,
            ledger: self.ledger,
            layers,
            buffer_stats: self.bufs.stats(),
            faults: self.faults,
            clock_hz: self.cfg.clock_hz,
        };
        Ok(SmRun {
            stats,
            trace: self.trace,
            retention: self.retention,
        })
    }

    /// Applies this layer boundary's scheduled faults: bank revocations
    /// (evacuate, then disable — value-preserving by construction) and
    /// residency-metadata corruption (only the DRAM-backed part of a prefix
    /// can be invalidated losslessly; it is re-fetched at the next use).
    fn apply_layer_faults(&mut self, lid: usize) -> Result<(), SimError> {
        let Some(mut inj) = self.injector.take() else {
            return Ok(());
        };
        let elem = self.elem();
        for bank in inj.banks_failing_at(lid) {
            match self.bufs.revoke_bank(bank)? {
                Revocation::WasFree => {
                    self.faults.banks_failed += 1;
                }
                Revocation::Evicted {
                    owner,
                    evicted_bytes,
                } => {
                    self.faults.banks_failed += 1;
                    self.faults.evicted_bytes += evicted_bytes;
                    self.record(TrafficClass::SpillWrite, evicted_bytes);
                    // Shrink the residency of whatever feature map lived in
                    // the evacuated buffer (sorted scan: deterministic).
                    let mut keys: Vec<usize> = self.fms.keys().copied().collect();
                    keys.sort_unstable();
                    for fm in keys {
                        let Some(r) = self.fms.get_mut(&fm) else {
                            continue;
                        };
                        if r.buffer != Some(owner) {
                            continue;
                        }
                        let evicted = (evicted_bytes / elem).min(r.resident_elems);
                        r.resident_elems -= evicted;
                        r.dram_suffix_elems = (r.dram_suffix_elems + evicted).min(r.total_elems);
                        r.spilled_elems = (r.spilled_elems + evicted).min(r.dram_suffix_elems);
                        let new_resident = r.resident_elems;
                        let empty = self
                            .bufs
                            .buffer(owner)
                            .map(|b| b.banks().is_empty())
                            .unwrap_or(false);
                        if empty {
                            r.buffer = None;
                            self.bufs.unpin(owner)?;
                            self.bufs.free(owner)?;
                        }
                        self.trace.events.push(TraceEvent::Spill {
                            fm,
                            new_resident_elems: new_resident,
                        });
                        break;
                    }
                }
            }
        }
        if inj.corruption_strikes() {
            let mut keys: Vec<usize> = self.fms.keys().copied().collect();
            keys.sort_unstable();
            // Candidates whose prefix overlaps their DRAM suffix: that
            // overlap can be dropped without losing data.
            let candidates: Vec<usize> = keys
                .into_iter()
                .filter(|k| {
                    let r = &self.fms[k];
                    r.resident_elems + r.dram_suffix_elems > r.total_elems
                })
                .collect();
            if !candidates.is_empty() {
                let fm = candidates[inj.pick(candidates.len())];
                if let Some(r) = self.fms.get_mut(&fm) {
                    r.resident_elems = r.total_elems - r.dram_suffix_elems;
                    self.faults.corruptions += 1;
                    self.trace.events.push(TraceEvent::Spill {
                        fm,
                        new_resident_elems: r.resident_elems,
                    });
                }
            }
        }
        self.injector = Some(inj);
        Ok(())
    }

    /// Plays one layer's weight-SRAM / PE-array / BCU-table site faults
    /// after its compute and traffic are known. Charges the ECC per-access
    /// tax (weight words, MACs, and the mapping-table scrub), repairs
    /// parity-detected strikes (weight refetch as [`TrafficClass::Retry`]
    /// plus a stall; lane recompute as extra compute cycles; table rebuild
    /// from a shadow copy at a stall), routes multi-bit DUEs through the
    /// recovery policy, and records silent strikes in the trace for the
    /// functional checker. Returns
    /// `(extra_compute, extra_overhead, retry_weight_bytes, retry_fm_bytes)`.
    ///
    /// # Errors
    ///
    /// [`SimError::Unrecoverable`] when a DUE lands under
    /// `RecoveryPolicy::Abort`, or when the layer's DUE count exceeds the
    /// plan's retry budget.
    fn apply_site_faults(
        &mut self,
        layer: &Layer,
        compute: u64,
        w_bytes: u64,
        traffic: &mut ClassTotals,
    ) -> Result<(u64, u64, u64, u64), SimError> {
        let Some(mut inj) = self.injector.take() else {
            return Ok((0, 0, 0, 0));
        };
        let lid = layer.id.index();
        let lanes = (self.cfg.pe_rows * self.cfg.pe_cols).max(1) as u64;
        let draw = inj.layer_site_faults();
        let mut extra_compute = 0u64;
        let mut extra_overhead = 0u64;
        let mut retry_w = 0u64;
        let mut retry_fm = 0u64;
        let mut layer_dues = 0u32;
        let out_buffer = self.fms.get(&lid).and_then(|r| r.buffer);
        let table = sm_buffer::bcu::BcuCost::estimate(self.cfg.sram.fm_pool, BCU_TABLE_BUFFERS);

        // ECC taxes every protected access, strike or not: the check logic
        // runs alongside each weight word read and each MAC issued, and an
        // ECC-protected mapping table is scrubbed once per layer while it
        // routes a live output buffer.
        if inj.weight_protection() == Protection::Ecc && w_bytes > 0 {
            self.faults.ecc_bytes += w_bytes;
            extra_overhead += ecc_check_cycles(w_bytes);
        }
        if inj.pe_protection() == Protection::Ecc && compute > 0 {
            extra_overhead += ecc_compute_tax_cycles(compute);
        }
        if inj.bcu_protection() == Protection::Ecc && out_buffer.is_some() {
            self.faults.ecc_bytes += table.table_bytes();
            extra_overhead += ecc_check_cycles(table.table_bytes());
        }

        if draw.weight_struck && w_bytes > 0 {
            self.faults.weight_faults += 1;
            let mut recovery = None;
            let outcome = match inj.weight_protection() {
                Protection::None => {
                    self.faults.silent_faults += 1;
                    FaultOutcome::Silent
                }
                Protection::Parity => {
                    self.faults.parity_detections += 1;
                    // Detected but not correctable: refetch the layer's
                    // weights from DRAM and stall for the turnaround.
                    self.ledger.record(lid, TrafficClass::Retry, w_bytes);
                    traffic.record(TrafficClass::Retry, w_bytes);
                    retry_w += w_bytes;
                    let stall = inj.retry_stall_cycles();
                    extra_overhead += stall;
                    self.faults.retry_stall_cycles += stall;
                    FaultOutcome::Detected
                }
                Protection::Ecc => match draw.weight_width {
                    StrikeWidth::Single => {
                        self.faults.ecc_corrections += 1;
                        FaultOutcome::Corrected
                    }
                    StrikeWidth::TriplePlus => {
                        // Wide enough to alias past SECDED: silent.
                        self.faults.silent_faults += 1;
                        FaultOutcome::Silent
                    }
                    StrikeWidth::Double => {
                        self.check_due_budget(
                            lid,
                            "weight SRAM",
                            Plane::Data,
                            inj.recovery_policy(),
                            &inj,
                            &mut layer_dues,
                        )?;
                        // Weights are primary inputs with no on-chip
                        // producer, so every recovery policy restores them
                        // the same way — refetch from DRAM — and the
                        // escalation budgets don't apply.
                        self.ledger.record(lid, TrafficClass::Retry, w_bytes);
                        traffic.record(TrafficClass::Retry, w_bytes);
                        retry_w += w_bytes;
                        let stall = inj.retry_stall_cycles();
                        extra_overhead += stall;
                        self.faults.retry_stall_cycles += stall;
                        self.faults.recovered_refetch += 1;
                        *self.faults.recovered_per_plane.slot(Plane::Data) += 1;
                        recovery = Some(TraceEvent::Recovery {
                            layer: lid,
                            site: FaultSite::WeightSram,
                            action: RecoveryAction::Refetched,
                            retry_bytes: w_bytes,
                            compute_cycles: 0,
                        });
                        FaultOutcome::Uncorrectable
                    }
                },
            };
            let words = w_bytes.div_ceil(8).max(1);
            self.trace.events.push(TraceEvent::Fault {
                layer: lid,
                site: FaultSite::WeightSram,
                unit: draw.weight_word % words,
                outcome,
            });
            self.trace.events.extend(recovery);
        }
        if draw.pe_struck && compute > 0 {
            self.faults.pe_faults += 1;
            let outcome = match inj.pe_protection() {
                Protection::None => {
                    self.faults.silent_faults += 1;
                    FaultOutcome::Silent
                }
                Protection::Parity => {
                    self.faults.parity_detections += 1;
                    // Recompute the struck lane's output share with the
                    // whole array once the bad results are discarded.
                    extra_compute += compute.div_ceil(lanes);
                    FaultOutcome::Detected
                }
                // The PE array is residue-checked logic, not stored state:
                // a strike is caught per-MAC regardless of its bit width,
                // so ECC always corrects here.
                Protection::Ecc => {
                    self.faults.ecc_corrections += 1;
                    FaultOutcome::Corrected
                }
            };
            self.trace.events.push(TraceEvent::Fault {
                layer: lid,
                site: FaultSite::PeArray,
                unit: draw.pe_lane % lanes,
                outcome,
            });
        }
        if draw.bcu_struck {
            if let Some(buffer) = out_buffer {
                self.faults.bcu_faults += 1;
                let site = FaultSite::BcuTable { buffer: buffer.0 };
                let mut recovery = None;
                let outcome = match inj.bcu_protection() {
                    Protection::None => {
                        // The mapping entry now routes the output buffer to
                        // the wrong bank: every later read of this feature
                        // map — possibly a junction many layers downstream —
                        // sees wrong data. Only the value replay can tell.
                        self.faults.silent_faults += 1;
                        FaultOutcome::Silent
                    }
                    Protection::Parity => {
                        // Detected on the next table read and rebuilt from
                        // the allocator's shadow copy: one stall, no
                        // traffic, values intact.
                        self.faults.parity_detections += 1;
                        let stall = inj.retry_stall_cycles();
                        extra_overhead += stall;
                        self.faults.retry_stall_cycles += stall;
                        FaultOutcome::Detected
                    }
                    Protection::Ecc => match draw.bcu_width {
                        StrikeWidth::Single => {
                            self.faults.ecc_corrections += 1;
                            FaultOutcome::Corrected
                        }
                        StrikeWidth::TriplePlus => {
                            self.faults.silent_faults += 1;
                            FaultOutcome::Silent
                        }
                        StrikeWidth::Double => {
                            let eff = self.effective_policy(&inj);
                            self.check_due_budget(
                                lid,
                                "BCU table",
                                Plane::Control,
                                eff,
                                &inj,
                                &mut layer_dues,
                            )?;
                            let (action, retry_bytes) =
                                self.recover_due(layer, traffic, eff, Plane::Control);
                            retry_fm += retry_bytes;
                            extra_compute += compute;
                            if action == RecoveryAction::Refetched {
                                let stall = inj.retry_stall_cycles();
                                extra_overhead += stall;
                                self.faults.retry_stall_cycles += stall;
                            }
                            recovery = Some(TraceEvent::Recovery {
                                layer: lid,
                                site,
                                action,
                                retry_bytes,
                                compute_cycles: compute,
                            });
                            FaultOutcome::Uncorrectable
                        }
                    },
                };
                self.trace.events.push(TraceEvent::Fault {
                    layer: lid,
                    site,
                    unit: draw.bcu_entry % table.table_entries.max(1),
                    outcome,
                });
                self.trace.events.extend(recovery);
            }
        }
        self.injector = Some(inj);
        Ok((extra_compute, extra_overhead, retry_w, retry_fm))
    }

    /// Admits one more DUE at this layer, or refuses: `Abort` (whether
    /// configured or reached by budget escalation) never recovers, and
    /// recoveries past the plan's retry budget fail the run the same way an
    /// exhausted DRAM transfer does. Counts the DUE against `plane`.
    fn check_due_budget(
        &mut self,
        lid: usize,
        site: &str,
        plane: Plane,
        policy: RecoveryPolicy,
        inj: &FaultInjector,
        layer_dues: &mut u32,
    ) -> Result<(), SimError> {
        self.faults.due_events += 1;
        *self.faults.due_per_plane.slot(plane) += 1;
        *layer_dues += 1;
        if policy == RecoveryPolicy::Abort || *layer_dues > inj.max_retries() {
            return Err(SimError::Unrecoverable {
                layer: lid,
                site: site.to_string(),
            });
        }
        Ok(())
    }

    /// Resolves the recovery tier the next DUE actually gets: the
    /// configured policy while its per-run budget lasts, then one rung up
    /// the `RefetchTile → RecomputeLayer → Checkpoint → Abort` ladder per
    /// exhausted tier. Unlimited budgets (the default) never escalate, so
    /// plans without budgets behave exactly as before.
    fn effective_policy(&self, inj: &FaultInjector) -> RecoveryPolicy {
        let budget = inj.recovery_budget();
        let mut policy = inj.recovery_policy();
        loop {
            let within = match policy {
                RecoveryPolicy::Abort => true,
                RecoveryPolicy::RefetchTile => budget
                    .refetches
                    .is_none_or(|n| self.budget_used.refetches < n),
                RecoveryPolicy::RecomputeLayer => budget
                    .recomputes
                    .is_none_or(|n| self.budget_used.recomputes < n),
                RecoveryPolicy::Checkpoint => budget
                    .rollbacks
                    .is_none_or(|n| self.budget_used.rollbacks < n),
            };
            if within {
                return policy;
            }
            policy = match policy {
                RecoveryPolicy::RefetchTile => RecoveryPolicy::RecomputeLayer,
                RecoveryPolicy::RecomputeLayer => RecoveryPolicy::Checkpoint,
                RecoveryPolicy::Checkpoint | RecoveryPolicy::Abort => RecoveryPolicy::Abort,
            };
        }
    }

    /// Repairs a DUE by re-executing the producing layer (the current one).
    /// Returns the action taken and the operand bytes re-streamed from
    /// DRAM as `Retry` traffic:
    ///
    /// * `RefetchTile` conservatively re-DMAs *every* operand byte of the
    ///   layer, resident or not.
    /// * `RecomputeLayer` reuses still-resident operands and re-streams
    ///   only the bytes this layer had to read from DRAM anyway (its
    ///   `IfmRead`/`ShortcutRead`/`SpillRead` totals) — zero when the
    ///   operands were fully resident, which is the measurable payoff of
    ///   keeping shortcut data on chip.
    /// * `Checkpoint` restores scheduler metadata from the last consistent
    ///   boundary snapshot and replays forward: shortcut and spill operands
    ///   were resident at the boundary by construction, so only the plain
    ///   input stream (`IfmRead`) is re-streamed — never more than
    ///   `RecomputeLayer`, and strictly less wherever mining kept operands
    ///   on chip. With no snapshot yet (a strike on the very first layer)
    ///   or a snapshot failing its consistency hash, it degrades to the
    ///   `RecomputeLayer` accounting.
    fn recover_due(
        &mut self,
        layer: &Layer,
        traffic: &mut ClassTotals,
        policy: RecoveryPolicy,
        plane: Plane,
    ) -> (RecoveryAction, u64) {
        let lid = layer.id.index();
        let recompute_bytes = |traffic: &ClassTotals| {
            traffic.class(TrafficClass::IfmRead)
                + traffic.class(TrafficClass::ShortcutRead)
                + traffic.class(TrafficClass::SpillRead)
        };
        let rollback_ready = self
            .checkpoint
            .as_ref()
            .is_some_and(|cp| cp.layer < lid && cp.hash == checkpoint_hash(&cp.entries));
        let (action, retry_bytes) = match policy {
            RecoveryPolicy::Checkpoint if rollback_ready => {
                self.faults.recovered_rollback += 1;
                self.budget_used.rollbacks += 1;
                (
                    RecoveryAction::RolledBack,
                    traffic.class(TrafficClass::IfmRead),
                )
            }
            RecoveryPolicy::Checkpoint | RecoveryPolicy::RecomputeLayer => {
                self.faults.recovered_recompute += 1;
                self.budget_used.recomputes += 1;
                (RecoveryAction::Recomputed, recompute_bytes(traffic))
            }
            RecoveryPolicy::RefetchTile | RecoveryPolicy::Abort => {
                self.faults.recovered_refetch += 1;
                self.budget_used.refetches += 1;
                let all_operand_bytes: u64 = self
                    .net
                    .in_shapes(layer.id)
                    .iter()
                    .map(|s| s.len() as u64 * self.elem())
                    .sum();
                (RecoveryAction::Refetched, all_operand_bytes)
            }
        };
        *self.faults.recovered_per_plane.slot(plane) += 1;
        if retry_bytes > 0 {
            self.ledger.record(lid, TrafficClass::Retry, retry_bytes);
            traffic.record(TrafficClass::Retry, retry_bytes);
        }
        (action, retry_bytes)
    }

    /// Builds the layer-boundary snapshot of scheduler metadata: one entry
    /// per live feature map plus its buffer's pin label, sealed with the
    /// consistency hash rollback verifies.
    fn take_checkpoint(&self, layer: usize) -> SchedCheckpoint {
        let mut entries: Vec<(usize, u64, u64, u64, bool)> = self
            .fms
            .iter()
            .map(|(&fm, r)| {
                let pinned = r
                    .buffer
                    .and_then(|b| self.bufs.buffer(b).ok())
                    .is_some_and(|b| b.is_pinned());
                (
                    fm,
                    r.resident_elems,
                    r.dram_suffix_elems,
                    r.spilled_elems,
                    pinned,
                )
            })
            .collect();
        entries.sort_unstable();
        let hash = checkpoint_hash(&entries);
        SchedCheckpoint {
            layer,
            entries,
            hash,
        }
    }

    /// Plays one layer boundary's scheduler-state strike, drawn from the
    /// dedicated scheduler stream (so all other fault classes stay
    /// byte-identical). The struck structure is one of the retention
    /// table, the pin set, or the spill queue; the outcome follows the
    /// scheduler storage's protection policy:
    ///
    /// * `None` — the decision state is silently wrong from here on
    ///   (residency dropped, a pin lost, the victim order reversed). The
    ///   mutation is value-safe by construction; only the functional
    ///   checker's consistency hash catches it
    ///   (`CheckError::SchedulerCorrupt`).
    /// * `Parity` — detected at the boundary scrub and rebuilt from the
    ///   allocator's shadow state at a stall.
    /// * `Ecc` — single-bit strikes are corrected free of tax (the
    ///   metadata is a few hundred bytes; its scrub hides in the layer
    ///   turnaround), double-bit DUEs go through the budget-resolved
    ///   recovery ladder, and 3+-bit strikes alias silently.
    ///
    /// Returns `(extra_compute, extra_overhead, retry_fm_bytes)`.
    ///
    /// # Errors
    ///
    /// [`SimError::Unrecoverable`] when a DUE resolves to `Abort`, either
    /// configured or reached by budget escalation.
    fn apply_scheduler_faults(
        &mut self,
        layer: &Layer,
        compute: u64,
        traffic: &mut ClassTotals,
    ) -> Result<(u64, u64, u64), SimError> {
        let Some(mut inj) = self.injector.take() else {
            return Ok((0, 0, 0));
        };
        let lid = layer.id.index();
        let draw = inj.layer_scheduler_faults();
        let mut extra_compute = 0u64;
        let mut extra_overhead = 0u64;
        let mut retry_fm = 0u64;
        if draw.struck {
            self.faults.scheduler_faults += 1;
            let structure = match draw.target % 3 {
                0 => SchedStructure::RetentionTable,
                1 => SchedStructure::PinSet,
                _ => SchedStructure::SpillQueue,
            };
            let site = FaultSite::Scheduler { structure };
            let unit = draw.index % self.scheduler_entries(structure);
            let mut recovery = None;
            let outcome = match inj.scheduler_protection() {
                Protection::None => {
                    self.faults.silent_faults += 1;
                    self.corrupt_scheduler_state(structure, draw.index)?;
                    FaultOutcome::Silent
                }
                Protection::Parity => {
                    self.faults.parity_detections += 1;
                    let stall = inj.retry_stall_cycles();
                    extra_overhead += stall;
                    self.faults.retry_stall_cycles += stall;
                    FaultOutcome::Detected
                }
                Protection::Ecc => match draw.width {
                    StrikeWidth::Single => {
                        self.faults.ecc_corrections += 1;
                        FaultOutcome::Corrected
                    }
                    StrikeWidth::TriplePlus => {
                        self.faults.silent_faults += 1;
                        self.corrupt_scheduler_state(structure, draw.index)?;
                        FaultOutcome::Silent
                    }
                    StrikeWidth::Double => {
                        let eff = self.effective_policy(&inj);
                        let mut layer_dues = 0u32;
                        self.check_due_budget(
                            lid,
                            "scheduler state",
                            Plane::Scheduler,
                            eff,
                            &inj,
                            &mut layer_dues,
                        )?;
                        let (action, retry_bytes) =
                            self.recover_due(layer, traffic, eff, Plane::Scheduler);
                        retry_fm += retry_bytes;
                        // Every tier replays the layer's own work after
                        // restoring the metadata.
                        extra_compute += compute;
                        if action == RecoveryAction::Refetched {
                            let stall = inj.retry_stall_cycles();
                            extra_overhead += stall;
                            self.faults.retry_stall_cycles += stall;
                        }
                        recovery = Some(TraceEvent::Recovery {
                            layer: lid,
                            site,
                            action,
                            retry_bytes,
                            compute_cycles: compute,
                        });
                        FaultOutcome::Uncorrectable
                    }
                },
            };
            self.trace.events.push(TraceEvent::Fault {
                layer: lid,
                site,
                unit,
                outcome,
            });
            self.trace.events.extend(recovery);
        }
        self.injector = Some(inj);
        Ok((extra_compute, extra_overhead, retry_fm))
    }

    /// Entry count of one scheduler structure, for reducing a raw strike
    /// selector (never zero so the reduction is total).
    fn scheduler_entries(&self, structure: SchedStructure) -> u64 {
        let n = match structure {
            SchedStructure::RetentionTable => self.fms.len() as u64,
            SchedStructure::PinSet => self.bufs.iter().filter(|b| b.is_pinned()).count() as u64,
            // The victim-ordering state is a single direction bit.
            SchedStructure::SpillQueue => 1,
        };
        n.max(1)
    }

    /// Mutates the struck scheduler structure the way an unprotected (or
    /// ECC-aliased) upset would, while staying value-safe: every element
    /// remains reachable from chip or DRAM, only the *decisions* go wrong.
    fn corrupt_scheduler_state(
        &mut self,
        structure: SchedStructure,
        index: u64,
    ) -> Result<(), SimError> {
        match structure {
            SchedStructure::RetentionTable => {
                // A retention record under-reports its resident prefix:
                // droppable only where the prefix overlaps the DRAM suffix
                // (the same lossless shrink residency corruption uses).
                let mut keys: Vec<usize> = self.fms.keys().copied().collect();
                keys.sort_unstable();
                let candidates: Vec<usize> = keys
                    .into_iter()
                    .filter(|k| {
                        let r = &self.fms[k];
                        r.resident_elems + r.dram_suffix_elems > r.total_elems
                    })
                    .collect();
                if candidates.is_empty() {
                    return Ok(());
                }
                let fm = candidates[(index % candidates.len() as u64) as usize];
                if let Some(r) = self.fms.get_mut(&fm) {
                    r.resident_elems = r.total_elems - r.dram_suffix_elems;
                    self.trace.events.push(TraceEvent::Spill {
                        fm,
                        new_resident_elems: r.resident_elems,
                    });
                }
            }
            SchedStructure::PinSet => {
                // A pin label flips off: the shortcut buffer keeps its data
                // but loses its spill immunity. Values stay intact; the
                // mining *decision* is gone.
                let mut pinned: Vec<LogicalBufferId> = self
                    .bufs
                    .iter()
                    .filter(|b| b.is_pinned())
                    .map(|b| b.id())
                    .collect();
                pinned.sort_unstable_by_key(|b| b.0);
                if pinned.is_empty() {
                    return Ok(());
                }
                let victim = pinned[(index % pinned.len() as u64) as usize];
                self.bufs.unpin(victim)?;
            }
            SchedStructure::SpillQueue => {
                self.spill_flip = !self.spill_flip;
            }
        }
        Ok(())
    }

    /// Checked-mode verification after one layer: bank accounting sums to
    /// the pool, the ledger is class-consistent and monotone, every tracked
    /// residency is within bounds, and liveness matches the schedule.
    fn check_layer_invariants(&self, layer: usize, prev_total: u64) -> Result<(), SimError> {
        let fail = |message: String| Err(SimError::Invariant { layer, message });
        if !self.bufs.check_invariants() {
            return fail("bank pool conservation or ownership broken".to_string());
        }
        let pool = self.bufs.config();
        let owned: usize = self.bufs.iter().map(|b| b.banks().len()).sum();
        if owned + self.bufs.free_banks() + self.bufs.disabled_banks() != pool.bank_count {
            return fail(format!(
                "bank accounting: {owned} owned + {} free + {} disabled != {} banks",
                self.bufs.free_banks(),
                self.bufs.disabled_banks(),
                pool.bank_count
            ));
        }
        if let Err(m) = self.ledger.check_consistency() {
            return fail(m);
        }
        if self.ledger.total_bytes() < prev_total {
            return fail(format!(
                "ledger total regressed: {} < {prev_total}",
                self.ledger.total_bytes()
            ));
        }
        let mut keys: Vec<usize> = self.fms.keys().copied().collect();
        keys.sort_unstable();
        for fm in keys {
            let r = &self.fms[&fm];
            if r.resident_elems > r.total_elems {
                return fail(format!(
                    "fm {fm}: resident {} exceeds total {}",
                    r.resident_elems, r.total_elems
                ));
            }
            if r.resident_elems + r.dram_suffix_elems < r.total_elems {
                return fail(format!(
                    "fm {fm}: {} elements unreachable from chip or DRAM",
                    r.total_elems - r.resident_elems - r.dram_suffix_elems
                ));
            }
            if r.spilled_elems > r.dram_suffix_elems {
                return fail(format!(
                    "fm {fm}: spilled {} exceeds DRAM suffix {}",
                    r.spilled_elems, r.dram_suffix_elems
                ));
            }
            if r.remaining_consumers == 0 {
                return fail(format!("fm {fm}: dead but still tracked"));
            }
            if r.remaining_consumers > self.net.consumers(LayerId(fm)).len() {
                return fail(format!(
                    "fm {fm}: {} consumers pending but schedule has {}",
                    r.remaining_consumers,
                    self.net.consumers(LayerId(fm)).len()
                ));
            }
            if let Some(b) = r.buffer {
                if self.bufs.buffer(b).is_err() {
                    return fail(format!("fm {fm}: buffer {b:?} is stale"));
                }
            }
        }
        Ok(())
    }

    /// Executes one layer: operand fetches, output allocation, write-back
    /// and consumption bookkeeping. Returns the compute cycles.
    fn run_layer(&mut self, layer: &Layer) -> Result<u64, SimError> {
        let elem = self.elem();
        let lanes = self.cfg.pe_rows * self.cfg.pe_cols;
        let out_elems = layer.out_elems() as u64;

        let cycles = match layer.kind {
            LayerKind::Input => 0,
            LayerKind::Conv(_) => {
                let dims =
                    ConvDims::from_layer(self.net, layer).ok_or_else(|| AccelError::NotConv {
                        layer: layer.name.clone(),
                    })?;
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                let mut caps = self.tile_caps();
                if self.policy.adaptive_tiling {
                    // Plan with what the controller actually granted: the
                    // resident part of the input and the output buffer's
                    // real capacity.
                    let pid = layer.inputs[0].index();
                    let in_resident = self.fms.get(&pid).map_or(0, |r| r.resident_elems * elem);
                    caps.ifm_bytes = caps.ifm_bytes.max(in_resident);
                    if let Some(b) = buffer {
                        let ob_cap = self.bufs.capacity_bytes(b)?;
                        caps.ofm_bytes = caps.ofm_bytes.max(ob_cap);
                    }
                }
                let plan = plan_conv_cached(dims, caps, self.cfg.pe_rows, self.cfg.pe_cols, elem);
                self.fetch_operand(layer, 0, Some(&plan))?;
                self.record(TrafficClass::WeightRead, plan.weight_dram_bytes);
                self.register_output(layer, buffer, resident, 0, 0)?;
                self.consume_operands(layer, &[])?;
                conv_compute_cycles(dims, plan.tm, plan.tn)
            }
            LayerKind::DepthwiseConv(spec) => {
                let in_shape = self.net.in_shapes(layer.id)[0];
                self.fetch_operand(layer, 0, None)?;
                let w_bytes = (in_shape.c * spec.kernel * spec.kernel) as u64 * elem;
                self.record(TrafficClass::WeightRead, w_bytes);
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                self.register_output(layer, buffer, resident, 0, 0)?;
                self.consume_operands(layer, &[])?;
                in_shape.n as u64
                    * in_shape.c.div_ceil(self.cfg.pe_rows) as u64
                    * (layer.out_shape.h * layer.out_shape.w) as u64
                    * (spec.kernel * spec.kernel) as u64
            }
            LayerKind::Pool(spec) => {
                self.fetch_operand(layer, 0, None)?;
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                self.register_output(layer, buffer, resident, 0, 0)?;
                self.consume_operands(layer, &[])?;
                vector_compute_cycles(out_elems * (spec.kernel * spec.kernel) as u64, lanes)
            }
            LayerKind::GlobalAvgPool => {
                self.fetch_operand(layer, 0, None)?;
                let in_elems = self.net.layer(layer.inputs[0]).out_elems() as u64;
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                self.register_output(layer, buffer, resident, 0, 0)?;
                self.consume_operands(layer, &[])?;
                vector_compute_cycles(in_elems, lanes)
            }
            LayerKind::Fc { out_features } => {
                self.fetch_operand(layer, 0, None)?;
                let in_shape = self.net.in_shapes(layer.id)[0];
                let in_features = in_shape.per_image();
                let batch = in_shape.n;
                let w_bytes = (out_features * in_features) as u64 * elem;
                let passes = if w_bytes <= self.cfg.sram.weight_bytes {
                    1
                } else {
                    batch as u64
                };
                self.record(TrafficClass::WeightRead, w_bytes * passes);
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                self.register_output(layer, buffer, resident, 0, 0)?;
                self.consume_operands(layer, &[])?;
                fc_compute_cycles(
                    batch,
                    in_features,
                    out_features,
                    self.cfg.pe_rows,
                    self.cfg.pe_cols,
                )
            }
            LayerKind::EltwiseAdd { .. } => {
                self.run_eltwise_add(layer)?;
                vector_compute_cycles(out_elems, lanes)
            }
            LayerKind::ConcatChannels => {
                self.run_concat(layer)?;
                0
            }
        };
        Ok(cycles)
    }

    /// Fused element-wise addition: the adjacent (residual) operand streams
    /// straight from its producer; pinned shortcut operands are consumed in
    /// place; the result takes over the residual operand's banks.
    fn run_eltwise_add(&mut self, layer: &Layer) -> Result<(), SimError> {
        let lid = layer.id.index();
        let adjacent_op = layer
            .inputs
            .iter()
            .position(|p| p.index() + 1 == lid)
            .filter(|&op| {
                self.fms
                    .get(&layer.inputs[op].index())
                    .is_some_and(|r| r.remaining_consumers == 1)
            });

        for op in 0..layer.inputs.len() {
            if Some(op) == adjacent_op {
                continue; // fused with the producer's output streaming
            }
            self.fetch_operand(layer, op, None)?;
        }

        let (buffer, resident, suffix, spilled, skip_consume) = match adjacent_op {
            Some(op) => {
                // Take over the residual operand's buffer in place.
                let pid = layer.inputs[op].index();
                let r = self.fms.remove(&pid).ok_or_else(|| SimError::Invariant {
                    layer: lid,
                    message: format!("operand fm {pid} is not live"),
                })?;
                self.trace.events.push(TraceEvent::Free { fm: pid });
                (
                    r.buffer,
                    r.resident_elems,
                    r.dram_suffix_elems,
                    r.spilled_elems,
                    vec![op],
                )
            }
            None => {
                let out_elems = layer.out_elems() as u64;
                let (buffer, resident) = self.allocate_output(layer, out_elems)?;
                (buffer, resident, 0, 0, vec![])
            }
        };
        self.register_output(layer, buffer, resident, suffix, spilled)?;
        self.consume_operands(layer, &skip_consume)
    }

    /// Fused concatenation: zero traffic of its own; the output buffer
    /// absorbs the operands' banks where the prefix layout allows.
    fn run_concat(&mut self, layer: &Layer) -> Result<(), SimError> {
        let batch = layer.out_shape.n;
        let elem = self.elem();
        let lid = layer.id.index();
        let ops: Vec<usize> = layer.inputs.iter().map(|p| p.index()).collect();

        // Residency of the concatenated map must stay a prefix in element
        // order; see DESIGN.md ("prefix-consistent concatenation").
        let mut rs: Vec<Resident> = Vec::with_capacity(ops.len());
        for p in &ops {
            rs.push(
                self.fms
                    .get(p)
                    .cloned()
                    .ok_or_else(|| SimError::Invariant {
                        layer: lid,
                        message: format!("concat operand fm {p} is not live"),
                    })?,
            );
        }
        // Concat junctions consume shortcut edges too (fire modules, dense
        // blocks, branchy DAGs); they bypass `fetch_operand`, so the
        // retention ledger is fed here — otherwise it would only ever see
        // add-style junctions.
        for (p, r) in ops.iter().zip(&rs) {
            if p + 1 < lid {
                self.retention.push(RetentionRecord {
                    producer: *p,
                    junction: lid,
                    skip: lid - p - 1,
                    resident_fraction: if r.total_elems == 0 {
                        0.0
                    } else {
                        r.resident_elems as f64 / r.total_elems as f64
                    },
                });
            }
        }

        let fully = rs.iter().all(|r| r.resident_elems == r.total_elems);
        let takeable = rs.iter().all(|r| r.remaining_consumers == 1);

        let (buffer, resident, written_now) = if fully && takeable && rs[0].buffer.is_some() {
            // All operands fully resident: absorb every buffer into the first.
            let dst = rs[0].buffer.ok_or_else(|| SimError::Invariant {
                layer: lid,
                message: "concat head lost its buffer".to_string(),
            })?;
            for r in &rs[1..] {
                if let Some(src) = r.buffer {
                    self.bufs.absorb(dst, src)?;
                }
            }
            (Some(dst), rs.iter().map(|r| r.total_elems).sum::<u64>(), 0)
        } else if batch == 1 && takeable {
            // Longest valid prefix: whole leading operands that are fully
            // resident, plus the next operand's resident prefix. Everything
            // resident beyond that prefix is written back now so the DRAM
            // suffix stays contiguous.
            let mut resident = 0u64;
            let mut dst: Option<LogicalBufferId> = None;
            let mut dropped = 0u64;
            let mut prefix_open = true;
            for r in &rs {
                if prefix_open {
                    resident += r.resident_elems;
                    if let Some(b) = r.buffer {
                        match dst {
                            None => dst = Some(b),
                            Some(d) => self.bufs.absorb(d, b)?,
                        }
                    }
                    if r.resident_elems < r.total_elems {
                        prefix_open = false;
                    }
                } else {
                    dropped += r.resident_elems;
                    if let Some(b) = r.buffer {
                        // Write the out-of-prefix data back and release it.
                        self.bufs.unpin(b)?;
                        self.bufs.free(b)?;
                    }
                }
            }
            (dst, resident, dropped)
        } else {
            // Batched concatenation interleaves per image; conservatively
            // drop residency (exact, value-safe — see DESIGN.md).
            let mut dropped = 0u64;
            for r in &rs {
                dropped += r.resident_elems;
                if let Some(b) = r.buffer {
                    self.bufs.unpin(b)?;
                    self.bufs.free(b)?;
                }
            }
            (None, 0, dropped)
        };
        self.record(TrafficClass::OfmWrite, written_now * elem);

        // Operand entries fold into the output entry.
        let suffix: u64 = rs.iter().map(|r| r.dram_suffix_elems).sum::<u64>() + written_now;
        let spilled: u64 = rs.iter().map(|r| r.spilled_elems).sum();
        if takeable {
            for p in &ops {
                self.fms.remove(p);
                self.trace.events.push(TraceEvent::Free { fm: *p });
            }
            self.register_output(
                layer,
                buffer,
                resident,
                suffix.min(layer.out_elems() as u64),
                spilled,
            )?;
        } else {
            // An operand outlives the concat (unusual). Non-takeable means
            // the conservative branch above ran: every resident element was
            // written back (charged in `written_now`) and every operand
            // buffer released, so each operand is now fully DRAM-backed.
            // Sync the live entries with that state — stale buffer handles
            // and residency here would read freed banks at the remaining
            // consumers — count this consumption, and free the operands
            // whose last use this was (mirroring `consume_operands`),
            // otherwise their entries leak for the rest of the run.
            for p in &ops {
                let Some(r) = self.fms.get_mut(p) else {
                    continue;
                };
                r.dram_suffix_elems = r.total_elems;
                if r.resident_elems > 0 {
                    r.resident_elems = 0;
                    self.trace.events.push(TraceEvent::Spill {
                        fm: *p,
                        new_resident_elems: 0,
                    });
                }
                r.buffer = None;
                r.remaining_consumers -= 1;
                if r.remaining_consumers == 0 {
                    self.fms.remove(p);
                    self.trace.events.push(TraceEvent::Free { fm: *p });
                }
            }
            self.register_output(layer, None, 0, layer.out_elems() as u64, 0)?;
        }
        Ok(())
    }

    /// Accounts the DRAM fetch of operand `op`'s non-resident suffix and the
    /// SRAM read of its resident prefix. Conv layers scale the fetch by the
    /// tile plan's streaming overhead (halo / channel-group re-reads).
    fn fetch_operand(
        &mut self,
        layer: &Layer,
        op: usize,
        plan: Option<&TilePlan>,
    ) -> Result<(), SimError> {
        let lid = layer.id.index();
        let pid = layer.inputs[op].index();
        let elem = self.elem();
        let r = self
            .fms
            .get(&pid)
            .ok_or_else(|| SimError::Invariant {
                layer: lid,
                message: format!("operand fm {pid} is not live"),
            })?
            .clone();
        let missing = r.missing_elems();
        debug_assert!(
            r.resident_elems + r.dram_suffix_elems >= r.total_elems,
            "fm {pid} has unreachable elements"
        );

        let shortcut_edge = pid + 1 < lid;
        if shortcut_edge {
            self.retention.push(RetentionRecord {
                producer: pid,
                junction: lid,
                skip: lid - pid - 1,
                resident_fraction: if r.total_elems == 0 {
                    0.0
                } else {
                    r.resident_elems as f64 / r.total_elems as f64
                },
            });
        }

        if missing > 0 {
            // Streaming overhead of the per-layer schedule applies to the
            // missing fraction (identical to the baseline's full fetch).
            let scale = |elems: u64| -> u64 {
                match plan {
                    Some(p) if r.total_elems > 0 => ((p.ifm_dram_bytes as f64)
                        * (elems as f64 / r.total_elems as f64))
                        .round() as u64,
                    _ => elems * elem,
                }
            };
            let spill_part = r.spilled_elems.min(missing);
            let normal_part = missing - spill_part;
            self.record(TrafficClass::SpillRead, scale(spill_part));
            let class = if shortcut_edge {
                TrafficClass::ShortcutRead
            } else {
                TrafficClass::IfmRead
            };
            self.record(class, scale(normal_part));
            self.trace.events.push(TraceEvent::FetchMissing {
                fm: pid,
                consumer: lid,
                elems: missing,
            });
        }
        if let Some(b) = r.buffer {
            self.bufs.read(b, r.resident_elems * elem)?;
        }
        Ok(())
    }

    /// Allocates the output logical buffer for a layer (plus the permanent
    /// one-bank streaming reserve implied by the pool geometry), spilling
    /// pinned shortcuts only when the pool is completely dry.
    fn allocate_output(
        &mut self,
        layer: &Layer,
        out_elems: u64,
    ) -> Result<(Option<LogicalBufferId>, u64), SimError> {
        let elem = self.elem();
        let consumers = self.net.consumers(layer.id);
        let lid = layer.id.index();
        let adjacent_next = consumers.first().is_some_and(|c| c.index() == lid + 1);
        let has_nonadjacent = consumers.iter().any(|c| c.index() > lid + 1);
        let useful = (self.policy.out_in_swap && adjacent_next)
            || (self.policy.shortcut_mining && has_nonadjacent);
        if !useful || out_elems == 0 {
            return Ok((None, 0));
        }
        let want = self
            .cfg
            .sram
            .fm_pool
            .banks_for_bytes(out_elems * elem)
            .max(1);
        // Under RetainPinned (default) pinned shortcut banks survive and the
        // output takes the free pool's leftovers; spills happen only to keep
        // the minimal streaming allocation alive. Under OutputFirst the
        // output is sized first, spilling pinned banks to make room. One
        // bank always stays free as the streaming staging reserve.
        let target = match self.policy.alloc_priority {
            crate::AllocPriority::OutputFirst => (want + 1).min(self.cfg.sram.fm_pool.bank_count),
            crate::AllocPriority::RetainPinned => 2,
        };
        if self.bufs.free_banks() < target {
            self.spill_for_banks(target, lid)?;
        }
        let grantable = self.bufs.free_banks().saturating_sub(1);
        if grantable == 0 {
            return Ok((None, 0));
        }
        let banks = want.min(grantable);
        let buffer = self.bufs.alloc(BufferRole::Output, banks)?;
        let capacity_elems = self.bufs.capacity_bytes(buffer)? / elem;
        let resident = out_elems.min(capacity_elems);
        self.bufs.write(buffer, resident * elem)?;
        Ok((Some(buffer), resident))
    }

    /// Spills pinned/retained buffers until `need` banks are free, skipping
    /// the current layer's operands. Returns silently when nothing is
    /// spillable.
    fn spill_for_banks(&mut self, need: usize, current: usize) -> Result<(), SimError> {
        let elem = self.elem();
        while self.bufs.free_banks() < need {
            let operands: Vec<usize> = self
                .net
                .layer(LayerId(current))
                .inputs
                .iter()
                .map(|p| p.index())
                .collect();
            // Victims: resident feature maps that are not operands of the
            // current layer, ordered by their next use.
            let mut victims: Vec<(usize, usize)> = self
                .fms
                .iter()
                .filter(|(fm, r)| {
                    !operands.contains(fm) && r.buffer.is_some() && r.resident_elems > 0
                })
                .map(|(fm, _)| {
                    let next_use = self
                        .net
                        .consumers(LayerId(*fm))
                        .iter()
                        .map(|c| c.index())
                        .find(|&c| c >= current)
                        .unwrap_or(usize::MAX);
                    (*fm, next_use)
                })
                .collect();
            if victims.is_empty() {
                return Ok(());
            }
            // A silent spill-queue upset reverses the victim walk.
            let order = if self.spill_flip {
                match self.policy.spill_order {
                    SpillOrder::FarthestJunctionFirst => SpillOrder::NearestJunctionFirst,
                    SpillOrder::NearestJunctionFirst => SpillOrder::FarthestJunctionFirst,
                }
            } else {
                self.policy.spill_order
            };
            match order {
                SpillOrder::FarthestJunctionFirst => {
                    victims.sort_by_key(|&(_, next_use)| std::cmp::Reverse(next_use))
                }
                SpillOrder::NearestJunctionFirst => victims.sort_by_key(|&(_, next_use)| next_use),
            }
            let (fm, _) = victims[0];
            let r = self.fms.get_mut(&fm).ok_or_else(|| SimError::Invariant {
                layer: current,
                message: format!("spill victim fm {fm} is not live"),
            })?;
            let buffer = r.buffer.ok_or_else(|| SimError::Invariant {
                layer: current,
                message: format!("spill victim fm {fm} has no buffer"),
            })?;
            let (_, evicted_bytes) = self.bufs.spill_bank(buffer)?;
            let evicted = evicted_bytes / elem;
            r.resident_elems -= evicted;
            r.dram_suffix_elems += evicted;
            r.spilled_elems += evicted;
            let new_resident = r.resident_elems;
            let empty = self
                .bufs
                .buffer(buffer)
                .map(|b| b.banks().is_empty())
                .unwrap_or(false);
            if empty {
                r.buffer = None;
                self.bufs.unpin(buffer)?;
                self.bufs.free(buffer)?;
            }
            self.record(TrafficClass::SpillWrite, evicted_bytes);
            self.trace.events.push(TraceEvent::Spill {
                fm,
                new_resident_elems: new_resident,
            });
        }
        Ok(())
    }

    /// Registers a produced feature map: decides its residency fate, writes
    /// whatever DRAM copy the policy requires, relabels the buffer, and
    /// emits the `Produce` trace event.
    fn register_output(
        &mut self,
        layer: &Layer,
        buffer: Option<LogicalBufferId>,
        resident_elems: u64,
        inherited_suffix: u64,
        spilled: u64,
    ) -> Result<(), SimError> {
        let lid = layer.id.index();
        let elem = self.elem();
        let total = layer.out_elems() as u64;
        let consumers = self.net.consumers(layer.id);
        let adjacent_next = consumers.first().is_some_and(|c| c.index() == lid + 1);
        let has_nonadjacent = consumers.iter().any(|c| c.index() > lid + 1);
        let useful = (self.policy.out_in_swap && adjacent_next)
            || (self.policy.shortcut_mining && has_nonadjacent);

        let mut resident = resident_elems;
        let mut suffix = inherited_suffix;
        let mut buffer = buffer;
        let mut spilled = spilled;

        let keep = useful && !consumers.is_empty() && resident > 0;
        // Required DRAM coverage: the non-resident tail always; the whole
        // map when residency is dropped or non-adjacent consumers cannot be
        // served from pinned banks (mining off).
        let required_suffix = if !keep || (has_nonadjacent && !self.policy.shortcut_mining) {
            total
        } else {
            total - resident
        };
        if required_suffix > suffix {
            self.record(TrafficClass::OfmWrite, (required_suffix - suffix) * elem);
            suffix = required_suffix;
        }

        if !keep {
            if let Some(b) = buffer.take() {
                self.bufs.unpin(b)?;
                self.bufs.free(b)?;
            }
            resident = 0;
            spilled = 0;
        } else if let Some(b) = buffer {
            let role = if self.policy.out_in_swap && adjacent_next {
                BufferRole::Input
            } else {
                BufferRole::Shortcut
            };
            self.bufs.relabel(b, role)?;
            if role == BufferRole::Shortcut {
                self.bufs.pin(b)?;
            }
            if self.policy.swap_by_copy {
                // Ablation: the role change is a physical copy.
                let bytes = resident * elem;
                self.copy_penalty_bytes += bytes;
                self.bufs.read(b, bytes)?;
                self.bufs.write(b, 0)?;
            }
        }

        self.trace.events.push(TraceEvent::Produce {
            fm: lid,
            total_elems: total,
            resident_elems: resident,
            dram_elems: suffix,
        });

        if consumers.is_empty() {
            if let Some(b) = buffer.take() {
                self.bufs.unpin(b)?;
                self.bufs.free(b)?;
            }
            self.trace.events.push(TraceEvent::Free { fm: lid });
            return Ok(());
        }
        self.fms.insert(
            lid,
            Resident {
                buffer,
                total_elems: total,
                resident_elems: resident,
                dram_suffix_elems: suffix,
                spilled_elems: spilled,
                remaining_consumers: consumers.len(),
            },
        );
        Ok(())
    }

    /// Post-layer consumption bookkeeping for every operand (except the
    /// indices in `already`, which a junction folded away).
    fn consume_operands(&mut self, layer: &Layer, already: &[usize]) -> Result<(), SimError> {
        for (op, pid) in layer.inputs.iter().enumerate() {
            if already.contains(&op) {
                continue;
            }
            let pid = pid.index();
            let Some(r) = self.fms.get_mut(&pid) else {
                continue; // folded into a junction output earlier this layer
            };
            r.remaining_consumers -= 1;
            if r.remaining_consumers == 0 {
                let buffer = r.buffer;
                self.fms.remove(&pid);
                if let Some(b) = buffer {
                    self.bufs.unpin(b)?;
                    self.bufs.free(b)?;
                }
                self.trace.events.push(TraceEvent::Free { fm: pid });
            } else if self.policy.shortcut_mining {
                // Shortcut storing: survive until the remaining consumers.
                if let Some(b) = r.buffer {
                    self.bufs.relabel(b, BufferRole::Shortcut)?;
                    self.bufs.pin(b)?;
                }
            } else {
                // No pinning: residency is dropped; the DRAM copy (written at
                // production, since non-adjacent consumers exist) serves the
                // remaining consumers. The shrink is traced so the checker
                // tracks where the data lives (no spill traffic: the copy
                // already exists).
                let buffer = r.buffer.take();
                debug_assert_eq!(r.dram_suffix_elems, r.total_elems);
                let had_residency = r.resident_elems > 0;
                r.resident_elems = 0;
                if had_residency {
                    self.trace.events.push(TraceEvent::Spill {
                        fm: pid,
                        new_resident_elems: 0,
                    });
                }
                if let Some(b) = buffer {
                    self.bufs.unpin(b)?;
                    self.bufs.free(b)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_accel::BaselineAccelerator;
    use sm_model::zoo;

    fn cfg() -> AccelConfig {
        AccelConfig::default()
    }

    fn run(net: &Network, policy: Policy) -> SmRun {
        ShortcutMiner::new(cfg(), policy).simulate(net)
    }

    #[test]
    #[should_panic(expected = "logical-buffer policy")]
    fn baseline_policy_is_rejected() {
        let _ = ShortcutMiner::new(cfg(), Policy::baseline());
    }

    #[test]
    fn reuse_disabled_matches_baseline_traffic_exactly() {
        for net in [
            zoo::toy_residual(1),
            zoo::resnet_tiny(2, 1),
            zoo::squeezenet_tiny(1),
            zoo::resnet34(1),
            zoo::squeezenet_v10_simple_bypass(1),
        ] {
            let base = BaselineAccelerator::new(cfg())
                .with_fused_junctions()
                .simulate(&net);
            let off = run(&net, Policy::reuse_disabled());
            assert_eq!(
                off.stats.fm_traffic_bytes(),
                base.fm_traffic_bytes(),
                "{}",
                net.name()
            );
            assert_eq!(
                off.stats.total_traffic_bytes(),
                base.total_traffic_bytes(),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn mining_reduces_fm_traffic_on_residual_networks() {
        for net in [zoo::toy_residual(1), zoo::resnet34(1), zoo::resnet152(1)] {
            let base = BaselineAccelerator::new(cfg()).simulate(&net);
            let sm = run(&net, Policy::shortcut_mining());
            assert!(
                sm.stats.fm_traffic_bytes() < base.fm_traffic_bytes(),
                "{}: {} !< {}",
                net.name(),
                sm.stats.fm_traffic_bytes(),
                base.fm_traffic_bytes()
            );
        }
    }

    #[test]
    fn never_worse_per_layer_and_in_total() {
        // The DESIGN.md invariant: SM feature-map traffic <= the (stronger,
        // fused) baseline's on every layer — except concatenations, whose
        // prefix-consistency rule may *defer* an operand's write-back from
        // its production layer to the concat layer (the running total stays
        // never-worse, which is also asserted).
        for net in [
            zoo::resnet34(1),
            zoo::squeezenet_v10_simple_bypass(1),
            zoo::resnet50(1),
        ] {
            let base = BaselineAccelerator::new(cfg())
                .with_fused_junctions()
                .simulate(&net);
            let sm = run(&net, Policy::shortcut_mining());
            let (mut base_cum, mut sm_cum) = (0u64, 0u64);
            for (b, s) in base.layers.iter().zip(&sm.stats.layers) {
                base_cum += b.traffic.feature_map();
                sm_cum += s.traffic.feature_map();
                // Spill-writes are deferred write-backs of *other* feature
                // maps that happen to be charged at this layer; exclude them
                // from the per-layer comparison (the cumulative check below
                // still covers them).
                let own = s.traffic.feature_map() - s.traffic.class(TrafficClass::SpillWrite);
                if s.kind != "concat" {
                    assert!(
                        own <= b.traffic.feature_map(),
                        "{} layer {}: {} > {}",
                        net.name(),
                        b.name,
                        own,
                        b.traffic.feature_map()
                    );
                }
                assert!(
                    sm_cum <= base_cum,
                    "{} cumulative at {}: {} > {}",
                    net.name(),
                    b.name,
                    sm_cum,
                    base_cum
                );
            }
        }
    }

    #[test]
    fn full_policy_beats_each_half() {
        let net = zoo::resnet34(1);
        let full = run(&net, Policy::shortcut_mining())
            .stats
            .fm_traffic_bytes();
        let swap = run(&net, Policy::swap_only()).stats.fm_traffic_bytes();
        let mine = run(&net, Policy::mining_only()).stats.fm_traffic_bytes();
        assert!(full <= swap);
        assert!(full <= mine);
        let base = BaselineAccelerator::new(cfg())
            .simulate(&net)
            .fm_traffic_bytes();
        assert!(swap < base);
        assert!(mine < base);
    }

    #[test]
    fn shortcut_reads_vanish_when_everything_fits() {
        // A toy network far smaller than the pool: every shortcut is served
        // on chip and only the network input/output touch DRAM.
        let net = zoo::toy_residual(1);
        let sm = run(&net, Policy::shortcut_mining());
        assert_eq!(sm.stats.ledger.class_bytes(TrafficClass::ShortcutRead), 0);
        assert_eq!(sm.stats.ledger.class_bytes(TrafficClass::SpillWrite), 0);
        let input_bytes = net.input().out_elems() as u64 * 2;
        let output_bytes = net.layers().last().unwrap().out_elems() as u64 * 2;
        assert_eq!(
            sm.stats.fm_traffic_bytes(),
            input_bytes + output_bytes,
            "only the boundary crossings remain"
        );
    }

    #[test]
    fn retention_is_full_without_pressure() {
        let net = zoo::resnet_tiny(2, 1);
        let sm = run(&net, Policy::shortcut_mining());
        assert!(!sm.retention.is_empty());
        for r in &sm.retention {
            assert!(
                (r.resident_fraction - 1.0).abs() < 1e-9,
                "shortcut {} -> {} lost data without pressure",
                r.producer,
                r.junction
            );
        }
    }

    #[test]
    fn capacity_pressure_causes_spills_not_errors() {
        let tiny = AccelConfig::default().with_fm_capacity(64 << 10);
        let net = zoo::resnet34(1);
        let sm = ShortcutMiner::new(tiny, Policy::shortcut_mining()).simulate(&net);
        let base = BaselineAccelerator::new(tiny)
            .with_fused_junctions()
            .simulate(&net);
        // Under heavy pressure SM degrades toward (but never beyond) baseline.
        assert!(sm.stats.fm_traffic_bytes() <= base.fm_traffic_bytes());
    }

    #[test]
    fn swap_by_copy_costs_cycles_but_same_traffic() {
        let net = zoo::resnet_tiny(3, 1);
        let relabel = run(&net, Policy::shortcut_mining());
        let copy = run(&net, Policy::shortcut_mining().with_swap_by_copy());
        assert_eq!(
            relabel.stats.fm_traffic_bytes(),
            copy.stats.fm_traffic_bytes()
        );
        assert!(copy.stats.total_cycles >= relabel.stats.total_cycles);
        assert!(copy.stats.buffer_stats.sram_bytes() > relabel.stats.buffer_stats.sram_bytes());
    }

    #[test]
    fn trace_produce_events_cover_every_layer() {
        let net = zoo::squeezenet_tiny(1);
        let sm = run(&net, Policy::shortcut_mining());
        let produced: Vec<usize> = sm
            .trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Produce { fm, .. } => Some(*fm),
                _ => None,
            })
            .collect();
        assert_eq!(produced.len(), net.len() - 1);
    }

    #[test]
    fn spill_order_changes_victims_under_pressure() {
        let tiny = AccelConfig::default().with_fm_capacity(128 << 10);
        let net = zoo::resnet50(1);
        let far = ShortcutMiner::new(tiny, Policy::shortcut_mining()).simulate(&net);
        let near = ShortcutMiner::new(
            tiny,
            Policy::shortcut_mining().with_spill_order(SpillOrder::NearestJunctionFirst),
        )
        .simulate(&net);
        // Both run; farthest-first should spill no more than nearest-first
        // re-reads (weak ordering assertion: totals differ or match).
        assert!(far.stats.fm_traffic_bytes() > 0);
        assert!(near.stats.fm_traffic_bytes() > 0);
    }
}
